"""Experiment drivers — one function per table/figure of the paper.

Every driver returns a list of plain-dict rows so the ``benchmarks/``
files can both print them (markdown) and assert on their shape.  The
defaults are sized for a laptop run of the whole suite in minutes;
three environment variables scale everything up towards the paper's
full protocol:

- ``REPRO_BENCH_GRAPH_SCALE`` — multiplier on stand-in graph sizes
  (default 0.25);
- ``REPRO_BENCH_QUERIES`` — query nodes per configuration
  (default 5; the paper uses 50);
- ``REPRO_BENCH_BUDGET`` — Monte-Carlo budget scale
  (default 0.01; the paper's guarantee corresponds to 1.0).

Wall-clock seconds are reported alongside machine-independent work
counters (push operations, walk steps, forest steps) — the counters
are what EXPERIMENTS.md compares against the paper's shapes, since
pure-Python constants distort absolute times.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.bench.harness import summarize
from repro.bench.workloads import (
    high_degree_nodes,
    low_degree_nodes,
    uniform_nodes,
)
from repro.core import (
    PPRConfig,
    l1_error,
    single_source,
    single_target,
)
from repro.core.accuracy import degree_normalized
from repro.forests.estimators import (
    source_estimate_basic,
    source_estimate_improved,
)
from repro.forests.sampling import sample_forest
from repro.graph.datasets import (
    UNWEIGHTED_DATASETS,
    WEIGHTED_DATASETS,
    load_dataset,
    table1_statistics,
)
from repro.linalg import (
    ExactSolver,
    estimate_spectral_density,
    tau_from_density,
)
from repro.linalg.transition import transition_matrix
from repro.montecarlo.forest_index import ForestIndex
from repro.montecarlo.walk_index import WalkIndex
from repro.push.forward import balanced_forward_push, forward_push

__all__ = [
    "bench_defaults",
    "table1",
    "fig2_eigenvalue_density",
    "fig2_tau_vs_alpha",
    "fig3_single_source_time",
    "fig4_l1_error",
    "fig5_index_build",
    "fig6_index_size",
    "fig7_index_query",
    "fig8_single_target_time",
    "fig9_weighted_source_time",
    "fig10_weighted_l1_error",
    "fig11_weighted_target_time",
    "fig12_query_distributions",
    "fig13_small_alpha",
    "ablation_estimator_variance",
    "ablation_sampler_throughput",
    "ablation_push_variants",
    "alpha_sweep_single_source",
    "ablation_batch_amortization",
]

ONLINE_SOURCE_METHODS = ("fora", "foral", "foralv",
                         "speedppr", "speedl", "speedlv")
TARGET_METHODS = ("back", "rback", "backlv")
EPSILONS = (0.1, 0.2, 0.3, 0.4, 0.5)


def bench_defaults() -> dict:
    """Resolve the environment-tunable benchmark defaults."""
    return {
        "graph_scale": float(os.environ.get("REPRO_BENCH_GRAPH_SCALE", 0.25)),
        "num_queries": int(os.environ.get("REPRO_BENCH_QUERIES", 5)),
        "budget_scale": float(os.environ.get("REPRO_BENCH_BUDGET", 0.01)),
    }


def _config(alpha: float, epsilon: float, budget_scale: float,
            seed: int) -> PPRConfig:
    return PPRConfig(alpha=alpha, epsilon=epsilon,
                     budget_scale=budget_scale, seed=seed)


# ----------------------------------------------------------------------
# Table 1
# ----------------------------------------------------------------------
def table1(*, scale: float | None = None, seed: int = 2022) -> list[dict]:
    """Dataset statistics (paper's Table 1, original vs stand-in)."""
    scale = bench_defaults()["graph_scale"] if scale is None else scale
    return table1_statistics(seed=seed, scale=scale)


# ----------------------------------------------------------------------
# Figure 2 — spectrum and tau
# ----------------------------------------------------------------------
def fig2_eigenvalue_density(datasets=("youtube", "pokec"), *,
                            scale: float | None = None, bins: int = 20,
                            num_moments: int = 60, num_probes: int = 8,
                            seed: int = 0) -> list[dict]:
    """Eigenvalue density of ``P`` (Fig. 2a–b): mass concentrated near 0."""
    scale = bench_defaults()["graph_scale"] if scale is None else scale
    rows = []
    for name in datasets:
        graph = load_dataset(name, scale=scale)
        density = estimate_spectral_density(
            graph, num_moments=num_moments, num_probes=num_probes, rng=seed)
        centres, mass = density.histogram(bins=bins)
        for centre, probability in zip(centres, mass):
            rows.append({"dataset": name, "eigenvalue": round(float(centre), 3),
                         "pdf": float(probability)})
    return rows


def fig2_tau_vs_alpha(datasets=("youtube", "pokec"), *,
                      alphas=(1e-1, 1e-2, 1e-3, 1e-4, 1e-5),
                      scale: float | None = None, num_moments: int = 60,
                      num_probes: int = 8, seed: int = 0) -> list[dict]:
    """τ versus α (Fig. 2c–d): Lemma 4.4 estimate next to the measured
    step count of one sampled forest."""
    scale = bench_defaults()["graph_scale"] if scale is None else scale
    rows = []
    for name in datasets:
        graph = load_dataset(name, scale=scale)
        density = estimate_spectral_density(
            graph, num_moments=num_moments, num_probes=num_probes, rng=seed)
        for alpha in alphas:
            forest = sample_forest(graph, alpha, rng=seed + 1)
            rows.append({
                "dataset": name,
                "alpha": alpha,
                "tau_lemma44": tau_from_density(density, alpha),
                "tau_sampled": forest.num_steps,
                "naive_walk_steps": graph.num_nodes / alpha,
            })
    return rows


# ----------------------------------------------------------------------
# Figures 3 / 9 — single-source query time
# ----------------------------------------------------------------------
def _source_time_rows(datasets, methods, epsilons, *, alpha, scale,
                      num_queries, budget_scale, seed) -> list[dict]:
    rows = []
    for name in datasets:
        graph = load_dataset(name, scale=scale)
        sources = uniform_nodes(graph, num_queries, rng=seed)
        for epsilon in epsilons:
            for method in methods:
                seconds, forest_steps, walk_steps, pushes = [], [], [], []
                for query_index, source in enumerate(sources):
                    config = _config(alpha, epsilon, budget_scale,
                                     seed + query_index)
                    started = time.perf_counter()
                    result = single_source(graph, int(source), method=method,
                                           config=config)
                    seconds.append(time.perf_counter() - started)
                    forest_steps.append(result.stats.get("forest_steps", 0))
                    walk_steps.append(result.stats.get("walk_steps", 0))
                    pushes.append(result.stats.get("push_work", 0))
                rows.append({
                    "dataset": name, "method": method, "epsilon": epsilon,
                    "mean_seconds": summarize(seconds)["mean"],
                    "mean_mc_steps": summarize(
                        np.add(forest_steps, walk_steps))["mean"],
                    "mean_push_work": summarize(pushes)["mean"],
                })
    return rows


def fig3_single_source_time(datasets=UNWEIGHTED_DATASETS,
                            methods=ONLINE_SOURCE_METHODS,
                            epsilons=EPSILONS, *, alpha: float = 0.01,
                            scale: float | None = None,
                            num_queries: int | None = None,
                            budget_scale: float | None = None,
                            seed: int = 1) -> list[dict]:
    """Fig. 3: online single-source query time on unweighted graphs."""
    defaults = bench_defaults()
    return _source_time_rows(
        datasets, methods, epsilons, alpha=alpha,
        scale=defaults["graph_scale"] if scale is None else scale,
        num_queries=defaults["num_queries"] if num_queries is None else num_queries,
        budget_scale=defaults["budget_scale"] if budget_scale is None else budget_scale,
        seed=seed)


def fig9_weighted_source_time(datasets=WEIGHTED_DATASETS,
                              methods=ONLINE_SOURCE_METHODS,
                              epsilons=EPSILONS, **kwargs) -> list[dict]:
    """Fig. 9: the Fig. 3 protocol on the weighted stand-ins."""
    return fig3_single_source_time(datasets, methods, epsilons, **kwargs)


# ----------------------------------------------------------------------
# Figures 4 / 10 — single-source L1 error
# ----------------------------------------------------------------------
def _source_l1_rows(datasets, methods, epsilons, *, alpha, scale,
                    num_queries, budget_scale, seed) -> list[dict]:
    rows = []
    for name in datasets:
        graph = load_dataset(name, scale=scale)
        solver = ExactSolver(graph, alpha)
        sources = uniform_nodes(graph, num_queries, rng=seed)
        exact = {int(s): solver.single_source(int(s)) for s in sources}
        for epsilon in epsilons:
            for method in methods:
                errors = []
                for query_index, source in enumerate(sources):
                    config = _config(alpha, epsilon, budget_scale,
                                     seed + query_index)
                    result = single_source(graph, int(source), method=method,
                                           config=config)
                    errors.append(l1_error(result, exact[int(source)]))
                rows.append({
                    "dataset": name, "method": method, "epsilon": epsilon,
                    "mean_l1_error": summarize(errors)["mean"],
                })
    return rows


def fig4_l1_error(datasets=("livejournal", "orkut"),
                  methods=ONLINE_SOURCE_METHODS, epsilons=EPSILONS, *,
                  alpha: float = 0.01, scale: float | None = None,
                  num_queries: int | None = None,
                  budget_scale: float | None = None,
                  seed: int = 2) -> list[dict]:
    """Fig. 4: L1 error of the six online single-source algorithms."""
    defaults = bench_defaults()
    return _source_l1_rows(
        datasets, methods, epsilons, alpha=alpha,
        scale=defaults["graph_scale"] if scale is None else scale,
        num_queries=defaults["num_queries"] if num_queries is None else num_queries,
        budget_scale=defaults["budget_scale"] if budget_scale is None else budget_scale,
        seed=seed)


def fig10_weighted_l1_error(datasets=WEIGHTED_DATASETS,
                            methods=ONLINE_SOURCE_METHODS,
                            epsilons=EPSILONS, **kwargs) -> list[dict]:
    """Fig. 10: the Fig. 4 protocol on the weighted stand-ins."""
    return fig4_l1_error(datasets, methods, epsilons, **kwargs)


# ----------------------------------------------------------------------
# Figures 5 / 6 / 7 — index build time, size, query time
# ----------------------------------------------------------------------
def _build_indexes(graph, alpha: float, epsilon: float, seed: int,
                   walk_cap: int | None = 512) -> dict:
    """Build all four §5.3 indexes for one configuration."""
    indexes = {}
    indexes["fora+"] = WalkIndex.build_fora_plus(graph, alpha, epsilon,
                                                 rng=seed, cap=walk_cap)
    indexes["speedppr+"] = WalkIndex.build_speedppr_plus(graph, alpha,
                                                         rng=seed + 1,
                                                         cap=walk_cap)
    base = ForestIndex.recommended_size(graph)
    indexes["foralv+"] = ForestIndex.build(
        graph, alpha, ForestIndex.recommended_size(graph, epsilon),
        rng=seed + 2)
    indexes["speedlv+"] = ForestIndex.build(graph, alpha, base, rng=seed + 3)
    return indexes


def fig5_index_build(datasets=("livejournal", "orkut"),
                     epsilons=EPSILONS, *, alpha: float = 0.01,
                     scale: float | None = None,
                     seed: int = 3) -> list[dict]:
    """Fig. 5: index construction time (and walk-step counters)."""
    scale = bench_defaults()["graph_scale"] if scale is None else scale
    rows = []
    for name in datasets:
        graph = load_dataset(name, scale=scale)
        for epsilon in epsilons:
            indexes = _build_indexes(graph, alpha, epsilon, seed)
            for method, index in indexes.items():
                rows.append({
                    "dataset": name, "method": method, "epsilon": epsilon,
                    "build_seconds": index.build_seconds,
                    "build_steps": index.build_steps,
                })
    return rows


def fig6_index_size(datasets=("livejournal", "orkut"), *,
                    alpha: float = 0.01, epsilon: float = 0.5,
                    scale: float | None = None, seed: int = 4) -> list[dict]:
    """Fig. 6: index memory footprint next to the graph's own size."""
    scale = bench_defaults()["graph_scale"] if scale is None else scale
    rows = []
    for name in datasets:
        graph = load_dataset(name, scale=scale)
        graph_bytes = graph.indptr.nbytes + graph.indices.nbytes + (
            graph.weights.nbytes if graph.weights is not None else 0)
        indexes = _build_indexes(graph, alpha, epsilon, seed)
        for method, index in indexes.items():
            # serialized bank footprint at each storage dtype — the
            # --bank-dtype float32 halving is what Fig. 6 should
            # credit, not the in-memory forest objects.  Walk indexes
            # have no operator bank, hence the empty cells.
            forest = isinstance(index, ForestIndex)
            rows.append({
                "dataset": name, "method": method,
                "index_mb": index.size_bytes / 2**20,
                "graph_mb": graph_bytes / 2**20,
                "bank_mb_f64": (index.bank_nbytes() / 2**20
                                if forest else ""),
                "bank_mb_f32": (
                    index.bank_nbytes(bank_dtype="float32") / 2**20
                    if forest else ""),
            })
    return rows


def fig7_index_query(datasets=("livejournal", "orkut"),
                     epsilons=(0.3, 0.5), *, alpha: float = 0.01,
                     scale: float | None = None,
                     num_queries: int | None = None,
                     budget_scale: float | None = None,
                     seed: int = 5) -> list[dict]:
    """Fig. 7: indexed query time (online SPEEDLV/FORALV for reference)."""
    defaults = bench_defaults()
    scale = defaults["graph_scale"] if scale is None else scale
    num_queries = defaults["num_queries"] if num_queries is None else num_queries
    budget_scale = defaults["budget_scale"] if budget_scale is None else budget_scale
    rows = []
    for name in datasets:
        graph = load_dataset(name, scale=scale)
        sources = uniform_nodes(graph, num_queries, rng=seed)
        for epsilon in epsilons:
            indexes = _build_indexes(graph, alpha, epsilon, seed)
            runs = [(f"{m}", m, indexes[m]) for m in
                    ("fora+", "speedppr+", "foralv+", "speedlv+")]
            runs += [("foralv (online)", "foralv", None),
                     ("speedlv (online)", "speedlv", None)]
            for label, method, index in runs:
                seconds = []
                for query_index, source in enumerate(sources):
                    config = _config(alpha, epsilon, budget_scale,
                                     seed + query_index)
                    started = time.perf_counter()
                    single_source(graph, int(source), method=method,
                                  config=config, index=index)
                    seconds.append(time.perf_counter() - started)
                rows.append({
                    "dataset": name, "method": label, "epsilon": epsilon,
                    "mean_seconds": summarize(seconds)["mean"],
                })
    return rows


# ----------------------------------------------------------------------
# Figures 8 / 11 — single-target query time
# ----------------------------------------------------------------------
def _target_time_rows(datasets, methods, epsilons, *, alpha, scale,
                      num_queries, budget_scale, seed,
                      target_fraction) -> list[dict]:
    rows = []
    for name in datasets:
        graph = load_dataset(name, scale=scale)
        targets = high_degree_nodes(graph, num_queries, rng=seed,
                                    fraction=target_fraction)
        for epsilon in epsilons:
            for method in methods:
                seconds, work = [], []
                for query_index, target in enumerate(targets):
                    config = _config(alpha, epsilon, budget_scale,
                                     seed + query_index)
                    started = time.perf_counter()
                    result = single_target(graph, int(target), method=method,
                                           config=config)
                    seconds.append(time.perf_counter() - started)
                    work.append(result.stats.get("push_work", 0)
                                + result.stats.get("forest_steps", 0))
                rows.append({
                    "dataset": name, "method": method, "epsilon": epsilon,
                    "mean_seconds": summarize(seconds)["mean"],
                    "mean_work": summarize(work)["mean"],
                })
    return rows


def fig8_single_target_time(datasets=UNWEIGHTED_DATASETS,
                            methods=TARGET_METHODS, epsilons=EPSILONS, *,
                            alpha: float = 0.01, scale: float | None = None,
                            num_queries: int | None = None,
                            budget_scale: float | None = None,
                            target_fraction: float = 0.1,
                            seed: int = 6) -> list[dict]:
    """Fig. 8: single-target time, high-degree targets.

    ``target_fraction`` is the degree-percentile pool the paper draws
    targets from (0.1 = top 10%); the quick protocol narrows it because
    scaled-down graphs compress the degree range.
    """
    defaults = bench_defaults()
    return _target_time_rows(
        datasets, methods, epsilons, alpha=alpha,
        scale=defaults["graph_scale"] if scale is None else scale,
        num_queries=defaults["num_queries"] if num_queries is None else num_queries,
        budget_scale=defaults["budget_scale"] if budget_scale is None else budget_scale,
        seed=seed, target_fraction=target_fraction)


def fig11_weighted_target_time(datasets=WEIGHTED_DATASETS,
                               methods=TARGET_METHODS,
                               epsilons=EPSILONS, **kwargs) -> list[dict]:
    """Fig. 11: the Fig. 8 protocol on the weighted stand-ins."""
    return fig8_single_target_time(datasets, methods, epsilons, **kwargs)


# ----------------------------------------------------------------------
# Figure 12 — query-time distribution by node-degree class
# ----------------------------------------------------------------------
def fig12_query_distributions(datasets=("youtube", "pokec"), *,
                              alpha: float = 0.01, epsilon: float = 0.5,
                              scale: float | None = None,
                              num_queries: int | None = None,
                              budget_scale: float | None = None,
                              seed: int = 7) -> list[dict]:
    """Fig. 12: SPEEDLV (source) and BACKLV (target) query-time spread
    for uniform / high-degree / low-degree query nodes (SU…TL)."""
    defaults = bench_defaults()
    scale = defaults["graph_scale"] if scale is None else scale
    num_queries = defaults["num_queries"] if num_queries is None else num_queries
    budget_scale = defaults["budget_scale"] if budget_scale is None else budget_scale
    samplers = {"U": uniform_nodes, "H": high_degree_nodes,
                "L": low_degree_nodes}
    rows = []
    for name in datasets:
        graph = load_dataset(name, scale=scale)
        for kind, runner, method in (("S", single_source, "speedlv"),
                                     ("T", single_target, "backlv")):
            for suffix, sampler in samplers.items():
                nodes = sampler(graph, num_queries, rng=seed)
                seconds = []
                for query_index, node in enumerate(nodes):
                    config = _config(alpha, epsilon, budget_scale,
                                     seed + query_index)
                    started = time.perf_counter()
                    runner(graph, int(node), method=method, config=config)
                    seconds.append(time.perf_counter() - started)
                stats = summarize(seconds)
                rows.append({"dataset": name, "mode": kind + suffix,
                             **{k: stats[k] for k in
                                ("median", "min", "max", "mean")}})
    return rows


# ----------------------------------------------------------------------
# Figure 13 — very small alpha
# ----------------------------------------------------------------------
def _ground_truth_cost(graph, alpha: float, tolerance: float = 1e-9,
                       probe_rounds: int = 200) -> tuple[float, int, bool]:
    """Cost of the deterministic ground-truth method of [49]
    (power iteration to ``tolerance``): (seconds, edge-ops, extrapolated).

    The required round count ``log(tol)/log(1-α)`` explodes as α → 0
    (that is the figure's very point), so beyond ``probe_rounds`` the
    time is measured on a prefix and linearly extrapolated; the flag
    says whether extrapolation happened.  The edge-op count
    ``rounds · m`` is exact either way and is the machine-independent
    comparison EXPERIMENTS.md uses.
    """
    required = int(np.ceil(np.log(tolerance) / np.log1p(-alpha)))
    rounds = min(required, probe_rounds)
    operator = transition_matrix(graph).T.tocsr()
    vector = np.zeros(graph.num_nodes)
    vector[0] = 1.0
    started = time.perf_counter()
    for _ in range(rounds):
        vector = (1.0 - alpha) * (operator @ vector)
    elapsed = time.perf_counter() - started
    work = required * graph.num_arcs
    if rounds == required:
        return elapsed, work, False
    return elapsed * (required / rounds), work, True


def fig13_small_alpha(datasets=("youtube", "pokec"), *,
                      alphas=(1e-1, 1e-2, 1e-3, 1e-4, 1e-5),
                      epsilon: float = 0.5, scale: float | None = None,
                      num_queries: int | None = None,
                      budget_scale: float | None = None,
                      seed: int = 8) -> list[dict]:
    """Fig. 13: SPEEDLV vs the degree-weighted-uniform baseline as
    α → 0 — L1 errors (vs exact) and runtimes (vs ground-truth time).
    """
    defaults = bench_defaults()
    scale = defaults["graph_scale"] if scale is None else scale
    num_queries = defaults["num_queries"] if num_queries is None else num_queries
    budget_scale = defaults["budget_scale"] if budget_scale is None else budget_scale
    rows = []
    for name in datasets:
        graph = load_dataset(name, scale=scale)
        uniform_baseline = graph.degrees / graph.total_weight
        sources = uniform_nodes(graph, num_queries, rng=seed)
        for alpha in alphas:
            solver = ExactSolver(graph, alpha)
            speedlv_errors, baseline_errors, seconds, work = [], [], [], []
            for query_index, source in enumerate(sources):
                exact = solver.single_source(int(source))
                config = _config(alpha, epsilon, budget_scale,
                                 seed + query_index)
                started = time.perf_counter()
                result = single_source(graph, int(source), method="speedlv",
                                       config=config)
                seconds.append(time.perf_counter() - started)
                speedlv_errors.append(l1_error(result, exact))
                baseline_errors.append(l1_error(uniform_baseline, exact))
                work.append(result.stats.get("push_work", 0)
                            + result.stats.get("forest_steps", 0))
            truth_seconds, truth_work, extrapolated = _ground_truth_cost(
                graph, alpha)
            rows.append({
                "dataset": name, "alpha": alpha,
                "speedlv_l1": summarize(speedlv_errors)["mean"],
                "uniform_l1": summarize(baseline_errors)["mean"],
                "speedlv_seconds": summarize(seconds)["mean"],
                "ground_truth_seconds": truth_seconds,
                "speedlv_work": summarize(work)["mean"],
                "ground_truth_work": truth_work,
                "ground_truth_extrapolated": extrapolated,
            })
    return rows


# ----------------------------------------------------------------------
# Ablations (design choices called out in DESIGN.md)
# ----------------------------------------------------------------------
def alpha_sweep_single_source(dataset: str = "youtube", *,
                              alphas=(0.2, 0.05, 0.01, 0.002),
                              epsilon: float = 0.5,
                              scale: float | None = None,
                              num_queries: int | None = None,
                              budget_scale: float | None = None,
                              seed: int = 12) -> list[dict]:
    """The paper's central claim as its own sweep: how the walk-based
    and forest-based Monte-Carlo costs scale as α shrinks (the α=0.2
    setting of the paper's full version sits at one end, α=0.002 past
    the paper's headline 0.01 at the other)."""
    defaults = bench_defaults()
    scale = defaults["graph_scale"] if scale is None else scale
    num_queries = defaults["num_queries"] if num_queries is None else num_queries
    budget_scale = defaults["budget_scale"] if budget_scale is None else budget_scale
    graph = load_dataset(dataset, scale=scale)
    sources = uniform_nodes(graph, num_queries, rng=seed)
    rows = []
    for alpha in alphas:
        for method, steps_key in (("fora", "walk_steps"),
                                  ("foralv", "forest_steps")):
            mc_steps, seconds = [], []
            for query_index, source in enumerate(sources):
                config = _config(alpha, epsilon, budget_scale,
                                 seed + query_index)
                started = time.perf_counter()
                result = single_source(graph, int(source), method=method,
                                       config=config)
                seconds.append(time.perf_counter() - started)
                mc_steps.append(result.stats.get(steps_key, 0))
            rows.append({
                "dataset": dataset, "alpha": alpha, "method": method,
                "mean_mc_steps": summarize(mc_steps)["mean"],
                "mean_seconds": summarize(seconds)["mean"],
            })
    return rows


def ablation_batch_amortization(dataset: str = "youtube", *,
                                alpha: float = 0.01,
                                num_queries: int | None = None,
                                scale: float | None = None,
                                budget_scale: float | None = None,
                                seed: int = 13) -> list[dict]:
    """Forest reuse across queries: one shared forest bank
    (:class:`~repro.core.batch.BatchSourceSolver`) versus independent
    online SPEEDLV queries."""
    from repro.core.batch import BatchSourceSolver

    defaults = bench_defaults()
    scale = defaults["graph_scale"] if scale is None else scale
    num_queries = defaults["num_queries"] if num_queries is None else num_queries
    budget_scale = defaults["budget_scale"] if budget_scale is None else budget_scale
    graph = load_dataset(dataset, scale=scale)
    sources = uniform_nodes(graph, num_queries, rng=seed)

    started = time.perf_counter()
    solver = BatchSourceSolver(graph, alpha=alpha, seed=seed,
                               budget_scale=budget_scale)
    build_seconds = time.perf_counter() - started
    batch_query_seconds = []
    for source in sources:
        started = time.perf_counter()
        solver.query(int(source))
        batch_query_seconds.append(time.perf_counter() - started)

    online_seconds = []
    for query_index, source in enumerate(sources):
        config = _config(alpha, 0.5, budget_scale, seed + query_index)
        started = time.perf_counter()
        single_source(graph, int(source), method="speedlv", config=config)
        online_seconds.append(time.perf_counter() - started)

    return [{
        "dataset": dataset,
        "num_queries": num_queries,
        "bank_forests": solver.num_forests,
        "bank_build_seconds": build_seconds,
        "batch_mean_query_seconds": summarize(batch_query_seconds)["mean"],
        "online_mean_query_seconds": summarize(online_seconds)["mean"],
    }]


def ablation_estimator_variance(dataset: str = "youtube", *,
                                alpha: float = 0.01, num_forests: int = 30,
                                scale: float | None = None,
                                seed: int = 9) -> list[dict]:
    """Lemma 5.1 in practice: per-node variance of the basic vs the
    improved single-source estimator over a fixed forest budget."""
    scale = bench_defaults()["graph_scale"] if scale is None else scale
    graph = load_dataset(dataset, scale=scale)
    push = balanced_forward_push(graph, 0, alpha, r_max=0.01)
    degrees = graph.degrees
    basic_samples, improved_samples = [], []
    rng = np.random.default_rng(seed)
    for _ in range(num_forests):
        forest = sample_forest(graph, alpha, rng=rng)
        basic_samples.append(source_estimate_basic(forest, push.residual))
        improved_samples.append(
            source_estimate_improved(forest, push.residual, degrees))
    basic = np.stack(basic_samples)
    improved = np.stack(improved_samples)
    return [{
        "dataset": dataset, "num_forests": num_forests,
        "num_nodes": graph.num_nodes,
        "basic_total_variance": float(basic.var(axis=0).sum()),
        "improved_total_variance": float(improved.var(axis=0).sum()),
        "variance_ratio": float(basic.var(axis=0).sum()
                                / max(improved.var(axis=0).sum(), 1e-30)),
        "mean_gap_l1": float(np.abs(basic.mean(axis=0)
                                    - improved.mean(axis=0)).sum()),
    }]


def ablation_sampler_throughput(dataset: str = "youtube", *,
                                alphas=(0.2, 0.05, 0.01),
                                repetitions: int = 3,
                                scale: float | None = None,
                                seed: int = 10) -> list[dict]:
    """Reference (Algorithm 1) vs vectorised cycle-popping sampler:
    steps drawn agree (both are τ in expectation), wall clock differs."""
    from repro.forests.batch_sampling import sample_forests_batch

    scale = bench_defaults()["graph_scale"] if scale is None else scale
    graph = load_dataset(dataset, scale=scale)
    rows = []
    for alpha in alphas:
        for method in ("wilson", "cycle_popping"):
            rng = np.random.default_rng(seed)
            seconds, steps = [], []
            for _ in range(repetitions):
                started = time.perf_counter()
                forest = sample_forest(graph, alpha, rng=rng, method=method)
                seconds.append(time.perf_counter() - started)
                steps.append(forest.num_steps)
            rows.append({
                "dataset": dataset, "alpha": alpha, "sampler": method,
                "mean_seconds": summarize(seconds)["mean"],
                "mean_steps": summarize(steps)["mean"],
            })
        started = time.perf_counter()
        batch = sample_forests_batch(graph, alpha, repetitions, rng=seed)
        elapsed = time.perf_counter() - started
        rows.append({
            "dataset": dataset, "alpha": alpha, "sampler": "batch",
            "mean_seconds": elapsed / repetitions,
            "mean_steps": summarize(
                [forest.num_steps for forest in batch])["mean"],
        })
    return rows


def ablation_push_variants(dataset: str = "youtube", *,
                           alpha: float = 0.01,
                           r_maxes=(0.01, 0.001, 0.0001),
                           scale: float | None = None) -> list[dict]:
    """Classic vs balanced forward push: work done and the residual
    ceiling each leaves behind (the quantity the forest sample count
    depends on)."""
    scale = bench_defaults()["graph_scale"] if scale is None else scale
    graph = load_dataset(dataset, scale=scale)
    rows = []
    for r_max in r_maxes:
        for label, runner in (("classic", forward_push),
                              ("balanced", balanced_forward_push)):
            result = runner(graph, 0, alpha, r_max)
            rows.append({
                "dataset": dataset, "r_max": r_max, "variant": label,
                "pushes": result.num_pushes, "work": int(result.work),
                "residual_mass": result.residual_mass,
                "residual_ceiling": float(result.residual.max(initial=0.0)),
            })
    return rows
