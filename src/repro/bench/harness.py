"""Timing and aggregation helpers for the experiment drivers."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.counters import WORK_STATS_PREFIX, WorkCounters

__all__ = ["Timer", "run_with_timing", "summarize", "work_summary",
           "total_work"]


class Timer:
    """Context-manager wall-clock timer.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.seconds >= 0
    True
    """

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        self.seconds = 0.0
        return self

    def __exit__(self, *exc_info) -> None:
        self.seconds = time.perf_counter() - self._start


@dataclass
class QueryTimings:
    """Per-query seconds plus any work counters the runner recorded."""

    seconds: list[float] = field(default_factory=list)
    counters: dict[str, list[float]] = field(default_factory=dict)

    def add(self, seconds: float, counters: dict | None = None) -> None:
        """Record one query's wall clock and counters."""
        self.seconds.append(seconds)
        for key, value in (counters or {}).items():
            if isinstance(value, (int, float, np.integer, np.floating)):
                self.counters.setdefault(key, []).append(float(value))


def run_with_timing(func, queries, *args, **kwargs) -> QueryTimings:
    """Run ``func(query, *args, **kwargs)`` per query, timing each.

    If the result has a ``stats`` dict (a
    :class:`~repro.core.result.PPRResult`), its numeric entries are
    collected as counters.
    """
    timings = QueryTimings()
    for query in queries:
        started = time.perf_counter()
        result = func(query, *args, **kwargs)
        elapsed = time.perf_counter() - started
        timings.add(elapsed, getattr(result, "stats", None))
    return timings


def work_summary(timings: QueryTimings) -> dict[str, dict[str, float]]:
    """Summarise the ``work_*`` counters collected across queries.

    Wall clock varies with the host; these counters don't, so
    experiment drivers report them next to seconds — a run that got
    slower without doing more work points at the machine, one that did
    more work points at the code.
    """
    return {key[len(WORK_STATS_PREFIX):]: summarize(values)
            for key, values in sorted(timings.counters.items())
            if key.startswith(WORK_STATS_PREFIX)}


def total_work(timings: QueryTimings) -> WorkCounters:
    """Sum the collected ``work_*`` counters into one record."""
    totals = WorkCounters()
    for key, values in timings.counters.items():
        if key.startswith(WORK_STATS_PREFIX):
            name = key[len(WORK_STATS_PREFIX):]
            if hasattr(totals, name):
                setattr(totals, name,
                        getattr(totals, name) + int(sum(values)))
    return totals


def summarize(values) -> dict[str, float]:
    """Mean / median / min / max / std of a sequence of numbers."""
    array = np.asarray(list(values), dtype=np.float64)
    if array.size == 0:
        return {"mean": 0.0, "median": 0.0, "min": 0.0, "max": 0.0,
                "std": 0.0, "count": 0}
    return {
        "mean": float(array.mean()),
        "median": float(np.median(array)),
        "min": float(array.min()),
        "max": float(array.max()),
        "std": float(array.std()),
        "count": int(array.size),
    }
