"""Query-node samplers matching §7.1 and §7.6.

The paper samples 50 query nodes (a) uniformly from all nodes (single
source), (b) uniformly from the top-10% highest degree nodes (single
target — low-degree targets terminate instantly under backward push),
and for Fig. 12 additionally (c) uniformly from the bottom-10%.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigError
from repro.graph.csr import Graph
from repro.rng import ensure_rng

__all__ = ["uniform_nodes", "high_degree_nodes", "low_degree_nodes",
           "QUERY_DISTRIBUTIONS"]


def _check(graph: Graph, count: int) -> None:
    if count <= 0:
        raise ConfigError("count must be positive")
    if count > graph.num_nodes:
        raise ConfigError(
            f"cannot draw {count} distinct nodes from {graph.num_nodes}")


def uniform_nodes(graph: Graph, count: int,
                  rng: np.random.Generator | int | None = None) -> np.ndarray:
    """``count`` distinct nodes uniformly at random."""
    _check(graph, count)
    generator = ensure_rng(rng)
    return generator.choice(graph.num_nodes, size=count, replace=False)


def _degree_pool(graph: Graph, count: int, top: bool,
                 fraction: float) -> np.ndarray:
    if not 0.0 < fraction <= 1.0:
        raise ConfigError("fraction must lie in (0, 1]")
    pool_size = max(int(graph.num_nodes * fraction), count)
    order = np.argsort(graph.degrees, kind="stable")
    return order[-pool_size:] if top else order[:pool_size]


def high_degree_nodes(graph: Graph, count: int,
                      rng: np.random.Generator | int | None = None,
                      fraction: float = 0.1) -> np.ndarray:
    """``count`` distinct nodes uniform over the top-``fraction`` by degree.

    The paper uses ``fraction=0.1`` (top 10%); the scaled-down stand-in
    graphs compress the degree range, so the quick benchmark protocol
    narrows the pool to keep "high-degree" meaning what it does at the
    paper's scale.
    """
    _check(graph, count)
    generator = ensure_rng(rng)
    pool = _degree_pool(graph, count, top=True, fraction=fraction)
    return generator.choice(pool, size=count, replace=False)


def low_degree_nodes(graph: Graph, count: int,
                     rng: np.random.Generator | int | None = None,
                     fraction: float = 0.1) -> np.ndarray:
    """``count`` distinct nodes uniform over the bottom-``fraction``."""
    _check(graph, count)
    generator = ensure_rng(rng)
    pool = _degree_pool(graph, count, top=False, fraction=fraction)
    return generator.choice(pool, size=count, replace=False)


#: Fig. 12's six query distributions by label.
QUERY_DISTRIBUTIONS = {
    "uniform": uniform_nodes,
    "high_degree": high_degree_nodes,
    "low_degree": low_degree_nodes,
}
