r"""PPR-based node ranking.

Two ranking functionals appear in the paper:

- **source-side** (``π(s, ·)``): "which nodes matter to s" — the
  recommendation / personalised-search view;
- **degree-normalised** (``π(s, ·) / d``): stays informative even as
  α → 0, where the raw vector degenerates to the degree-weighted
  stationary distribution (§7.7, [50]).

:func:`top_k_sources` answers the reverse question with a single
target query: "for whom is t most important" — the influence view the
single-target algorithms of §6 exist for.
"""

from __future__ import annotations

import numpy as np

from repro.core.api import single_source, single_target
from repro.core.config import PPRConfig
from repro.exceptions import ConfigError
from repro.graph.csr import Graph

__all__ = ["ppr_rank", "degree_normalized_rank", "top_k_sources"]


def _top_k(scores: np.ndarray, k: int,
           exclude: int | None = None) -> list[tuple[int, float]]:
    if k <= 0:
        raise ConfigError("k must be positive")
    working = scores.copy()
    if exclude is not None:
        working[exclude] = -np.inf
    k = min(k, working.size - (1 if exclude is not None else 0))
    order = np.argpartition(working, -k)[-k:]
    order = order[np.argsort(working[order])[::-1]]
    return [(int(node), float(scores[node])) for node in order]


def ppr_rank(graph: Graph, source: int, k: int = 10, *,
             alpha: float = 0.01, method: str = "speedlv",
             config: PPRConfig | None = None,
             include_source: bool = False,
             **overrides) -> list[tuple[int, float]]:
    """Top-``k`` nodes by ``π(source, ·)`` (the source itself excluded
    by default — it always dominates its own vector)."""
    result = single_source(graph, source, method=method, config=config,
                           alpha=alpha, **overrides)
    return _top_k(result.estimates, k,
                  exclude=None if include_source else source)


def degree_normalized_rank(graph: Graph, source: int, k: int = 10, *,
                           alpha: float = 0.01, method: str = "speedlv",
                           config: PPRConfig | None = None,
                           **overrides) -> list[tuple[int, float]]:
    """Top-``k`` nodes by ``π(source, ·) / d`` — the small-α-robust
    ranking of [50] (§7.7)."""
    result = single_source(graph, source, method=method, config=config,
                           alpha=alpha, **overrides)
    scores = np.zeros(graph.num_nodes)
    positive = graph.degrees > 0
    scores[positive] = result.estimates[positive] / graph.degrees[positive]
    return _top_k(scores, k, exclude=source)


def top_k_sources(graph: Graph, target: int, k: int = 10, *,
                  alpha: float = 0.01, method: str = "backlv",
                  config: PPRConfig | None = None,
                  **overrides) -> list[tuple[int, float]]:
    """Top-``k`` nodes ``v`` by ``π(v, target)``: for whom is ``target``
    most important — one single-target query instead of ``n`` source
    queries."""
    result = single_target(graph, target, method=method, config=config,
                           alpha=alpha, **overrides)
    return _top_k(result.estimates, k, exclude=target)
