r"""PPR-based local graph clustering (Andersen–Chung–Lang sweep cut).

The classic pipeline [4] that the paper's introduction cites as the
reason small decay factors matter: compute an (approximate)
single-source PPR vector around a seed, order nodes by
``π(s, v) / d_v``, and sweep prefixes of that order, returning the one
with the lowest *conductance*

.. math::  \phi(S) = \frac{cut(S, \bar S)}{\min(vol(S), vol(\bar S))} .

With α as small as 0.01 (the optimum reported by [41]) the PPR vector
covers a large neighbourhood of the seed — exactly the regime where
forest sampling shines over α-walks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.api import single_source
from repro.core.config import PPRConfig
from repro.exceptions import ConfigError
from repro.graph.csr import Graph

__all__ = ["SweepCutResult", "conductance", "sweep_cut", "local_cluster"]


@dataclass
class SweepCutResult:
    """Outcome of a sweep cut.

    Attributes
    ----------
    members:
        Node ids of the best prefix (the cluster), seed-side.
    conductance:
        Conductance of the returned cluster.
    sweep_conductances:
        Conductance of every swept prefix (for plotting the sweep
        profile).
    order:
        The degree-normalised node order that was swept.
    """

    members: np.ndarray
    conductance: float
    sweep_conductances: np.ndarray
    order: np.ndarray

    @property
    def size(self) -> int:
        """Number of nodes in the cluster."""
        return self.members.size


def conductance(graph: Graph, members: np.ndarray) -> float:
    """Conductance ``φ(S)`` of a node set (undirected graphs).

    Returns 0 for the empty or full set by convention of "no cut".
    """
    if graph.directed:
        raise ConfigError("conductance is defined here for undirected graphs")
    members = np.unique(np.asarray(members, dtype=np.int64))
    if members.size == 0 or members.size == graph.num_nodes:
        return 0.0
    inside = np.zeros(graph.num_nodes, dtype=bool)
    inside[members] = True
    weights = (np.ones(graph.num_arcs) if graph.weights is None
               else graph.weights)
    sources = np.repeat(np.arange(graph.num_nodes), graph.out_degrees)
    crossing = inside[sources] != inside[graph.indices]
    cut = float(weights[crossing].sum()) / 2.0
    volume = float(graph.degrees[members].sum())
    complement = graph.total_weight - volume
    denominator = min(volume, complement)
    if denominator <= 0:
        return 1.0
    return cut / denominator


def sweep_cut(graph: Graph, scores: np.ndarray, *,
              max_cluster_size: int | None = None) -> SweepCutResult:
    """Sweep the degree-normalised score order and keep the best prefix.

    Parameters
    ----------
    scores:
        Any node-score vector (typically an approximate PPR vector);
        only nodes with positive score are swept.
    max_cluster_size:
        Cap on the prefix length (defaults to ``n - 1``).

    Complexity: one sort plus an O(m) incremental cut/volume update.
    """
    if graph.directed:
        raise ConfigError("sweep_cut is defined here for undirected graphs")
    scores = np.asarray(scores, dtype=np.float64)
    if scores.shape != (graph.num_nodes,):
        raise ConfigError("scores must have one entry per node")
    normalized = np.zeros_like(scores)
    positive_degree = graph.degrees > 0
    normalized[positive_degree] = (scores[positive_degree]
                                   / graph.degrees[positive_degree])
    candidates = np.flatnonzero(scores > 0)
    if candidates.size == 0:
        raise ConfigError("sweep_cut needs at least one positive score")
    order = candidates[np.argsort(-normalized[candidates], kind="stable")]
    limit = min(order.size, max_cluster_size or graph.num_nodes - 1,
                graph.num_nodes - 1)
    order = order[:limit]

    weights = (np.ones(graph.num_arcs) if graph.weights is None
               else graph.weights)
    inside = np.zeros(graph.num_nodes, dtype=bool)
    total = graph.total_weight
    volume = 0.0
    cut = 0.0
    conductances = np.empty(order.size)
    for index, node in enumerate(order):
        lo, hi = graph.indptr[node], graph.indptr[node + 1]
        neighbors = graph.indices[lo:hi]
        inside_weight = float(weights[lo:hi][inside[neighbors]].sum())
        volume += float(graph.degrees[node])
        # node's edges to outside enter the cut; edges to inside leave it
        cut += float(graph.degrees[node]) - 2.0 * inside_weight
        inside[node] = True
        denominator = min(volume, total - volume)
        conductances[index] = (cut / denominator if denominator > 0 else 1.0)
    best = int(np.argmin(conductances))
    return SweepCutResult(members=order[:best + 1].copy(),
                          conductance=float(conductances[best]),
                          sweep_conductances=conductances,
                          order=order)


def local_cluster(graph: Graph, seed_node: int, *, alpha: float = 0.01,
                  method: str = "speedlv",
                  config: PPRConfig | None = None,
                  max_cluster_size: int | None = None,
                  **overrides) -> SweepCutResult:
    """End-to-end local clustering around ``seed_node``.

    Runs the chosen single-source PPR algorithm (default the paper's
    SPEEDLV — this is the small-α workload it is built for) and sweeps
    the result.

    Examples
    --------
    >>> import repro
    >>> from repro.applications import local_cluster
    >>> g = repro.load_dataset("youtube", scale=0.05)
    >>> cluster = local_cluster(g, 0, alpha=0.01, budget_scale=0.05, seed=3)
    >>> 0.0 <= cluster.conductance <= 1.0
    True
    """
    result = single_source(graph, seed_node, method=method, config=config,
                           alpha=alpha, **overrides)
    sweep = sweep_cut(graph, result.estimates,
                      max_cluster_size=max_cluster_size)
    return sweep
