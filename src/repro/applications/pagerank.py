r"""Global (non-personalised) PageRank via spanning forests.

With uniform teleportation the global PageRank vector is the column
average of the PPR matrix,

.. math:: pr(t) = \frac{1}{n} \sum_s \pi(s, t)
              = \frac{1}{n}\,E\big[\,|\{u : root(u) = t\}|\,\big],

i.e. the expected *tree size* of ``t`` as a root, divided by ``n`` —
one sampled forest gives a full global PageRank observation.  The
degree-conditional trick of Theorem 3.8 applies verbatim: spreading
each tree's size by degree gives the variance-reduced estimator
``E[ d_t · |C(t)| / Σ_{u∈C(t)} d_u ]`` (undirected graphs).

This is a corollary the paper does not evaluate but that falls out of
the machinery; it is exact in expectation and is tested against power
iteration.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigError
from repro.forests.sampling import sample_forests
from repro.graph.csr import Graph
from repro.linalg.transition import transition_matrix

__all__ = ["global_pagerank_exact", "global_pagerank_forests"]


def global_pagerank_exact(graph: Graph, alpha: float,
                          tolerance: float = 1e-12,
                          max_iterations: int = 100_000) -> np.ndarray:
    """Uniform-teleport PageRank by power iteration (ground truth)."""
    if not 0.0 < alpha < 1.0:
        raise ConfigError(f"alpha must lie strictly in (0, 1), got {alpha}")
    n = graph.num_nodes
    operator = transition_matrix(graph).T.tocsr()
    result = np.zeros(n)
    residual = np.full(n, 1.0 / n)
    for _ in range(max_iterations):
        result += alpha * residual
        residual = (1.0 - alpha) * (operator @ residual)
        if residual.sum() < tolerance:
            return result
    raise ConfigError("power iteration failed to converge")


def global_pagerank_forests(graph: Graph, alpha: float,
                            num_forests: int = 64, *,
                            improved: bool | None = None,
                            rng=None) -> np.ndarray:
    """Global PageRank estimated from ``num_forests`` spanning forests.

    Parameters
    ----------
    improved:
        Use the degree-conditional variance-reduced estimator
        (default on undirected graphs; invalid — and refused — on
        directed ones).

    Notes
    -----
    Cost is ``num_forests · τ`` walk steps — independent of 1/α up to
    the spectrum effects of Lemma 4.4, so this stays cheap at small
    teleport probabilities where power iteration needs ``1/α`` rounds.
    """
    if num_forests <= 0:
        raise ConfigError("num_forests must be positive")
    if improved is None:
        improved = not graph.directed
    if improved and graph.directed:
        raise ConfigError(
            "the degree-conditional estimator requires an undirected graph")
    n = graph.num_nodes
    degrees = graph.degrees
    totals = np.zeros(n)
    for forest in sample_forests(graph, alpha, num_forests, rng=rng):
        if improved:
            tree_sizes = np.bincount(forest.roots, minlength=n)
            tree_degrees = forest.component_degree_mass(degrees)
            labels = forest.roots
            estimate = np.zeros(n)
            positive = tree_degrees[labels] > 0
            estimate[positive] = (degrees[positive]
                                  * tree_sizes[labels[positive]]
                                  / tree_degrees[labels[positive]])
            estimate[~positive] = 1.0  # isolated nodes root themselves
            totals += estimate
        else:
            totals += np.bincount(forest.roots, minlength=n)
    return totals / (num_forests * n)
