"""Applications built on PPR — the workloads the paper's introduction
motivates (local graph clustering [4, 41], node ranking [50]).

These are consumers of the query API: they demonstrate why the small-α
regime matters (a small decay factor lets the walk see a large
neighbourhood) and serve the example scripts and tests.
"""

from repro.applications.clustering import (
    SweepCutResult,
    conductance,
    sweep_cut,
    local_cluster,
)
from repro.applications.ranking import (
    ppr_rank,
    degree_normalized_rank,
    top_k_sources,
)
from repro.applications.pagerank import (
    global_pagerank_exact,
    global_pagerank_forests,
)
from repro.applications.smoothing import (
    smooth_signal_exact,
    smooth_signal_forests,
)

__all__ = [
    "SweepCutResult",
    "conductance",
    "sweep_cut",
    "local_cluster",
    "ppr_rank",
    "degree_normalized_rank",
    "top_k_sources",
    "global_pagerank_exact",
    "global_pagerank_forests",
    "smooth_signal_exact",
    "smooth_signal_forests",
]
