r"""Graph-signal smoothing with random spanning forests.

The PPR operator is a graph low-pass filter: the smoothed signal

.. math:: \hat y = \Pi\, y = \alpha\,(I - (1-\alpha)P)^{-1} y

solves the Tikhonov problem ``min_x β‖x − y‖²_D + x^T L x`` up to the
degree weighting — the application of random spanning forests studied
by Pilavcı et al. [38], which the paper cites as prior art for its
sampler.  One forest gives the unbiased estimate
``x̂(v) = y(root(v))`` (each node inherits its tree root's value), and
the degree-conditional trick of Theorem 3.8 replaces that by the
tree's degree-weighted mean for a strictly smaller variance
(undirected graphs).

This is exactly the machinery of
:mod:`repro.forests.estimators` applied to an arbitrary signal instead
of a push residual.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigError
from repro.forests.estimators import (
    target_estimate_basic,
    target_estimate_improved,
)
from repro.forests.sampling import sample_forests
from repro.graph.csr import Graph
from repro.linalg.transition import transition_matrix

__all__ = ["smooth_signal_exact", "smooth_signal_forests"]


def smooth_signal_exact(graph: Graph, signal: np.ndarray,
                        alpha: float) -> np.ndarray:
    """``Π y`` by power iteration — the smoother's ground truth."""
    signal = np.asarray(signal, dtype=np.float64)
    if signal.shape != (graph.num_nodes,):
        raise ConfigError("signal must have one entry per node")
    if not 0.0 < alpha < 1.0:
        raise ConfigError(f"alpha must lie strictly in (0, 1), got {alpha}")
    operator = transition_matrix(graph).tocsr()
    result = np.zeros_like(signal)
    residual = signal.copy()
    # Pi y = alpha * sum_k ((1-alpha) P)^k y
    for _ in range(100_000):
        result += alpha * residual
        residual = (1.0 - alpha) * (operator @ residual)
        if np.abs(residual).sum() < 1e-12 * max(np.abs(signal).sum(), 1.0):
            return result
    raise ConfigError("smoothing power iteration failed to converge")


def smooth_signal_forests(graph: Graph, signal: np.ndarray, alpha: float,
                          num_forests: int = 32, *,
                          improved: bool | None = None,
                          rng=None) -> np.ndarray:
    """Monte-Carlo estimate of ``Π y`` from spanning forests.

    Parameters
    ----------
    signal:
        Arbitrary real node signal ``y`` (may be negative — the
        estimators are linear).
    improved:
        Degree-conditional variance reduction; defaults to on for
        undirected graphs, refused for directed ones.

    Examples
    --------
    >>> import numpy as np, repro
    >>> from repro.applications.smoothing import (smooth_signal_exact,
    ...                                           smooth_signal_forests)
    >>> g = repro.load_dataset("youtube", scale=0.05)
    >>> y = np.random.default_rng(0).normal(size=g.num_nodes)
    >>> approx = smooth_signal_forests(g, y, 0.2, num_forests=64, rng=1)
    >>> exact = smooth_signal_exact(g, y, 0.2)
    >>> float(np.abs(approx - exact).mean()) < 0.2
    True
    """
    signal = np.asarray(signal, dtype=np.float64)
    if signal.shape != (graph.num_nodes,):
        raise ConfigError("signal must have one entry per node")
    if num_forests <= 0:
        raise ConfigError("num_forests must be positive")
    if improved is None:
        improved = not graph.directed
    if improved and graph.directed:
        raise ConfigError(
            "the degree-conditional estimator requires an undirected graph")
    degrees = graph.degrees
    total = np.zeros_like(signal)
    for forest in sample_forests(graph, alpha, num_forests, rng=rng):
        if improved:
            total += target_estimate_improved(forest, signal, degrees)
        else:
            total += target_estimate_basic(forest, signal)
    return total / num_forests
