"""Monte-Carlo substrate: batched α-random walks and the precomputed
indexes behind the ``+`` variants (FORA+/SPEEDPPR+ store walk
endpoints; FORALV+/SPEEDLV+ store spanning forests, §5.3).
"""

from repro.montecarlo.walks import (
    WalkBatch,
    simulate_alpha_walks,
    estimate_single_source_walks,
)
from repro.montecarlo.walk_index import WalkIndex
from repro.montecarlo.forest_index import ForestIndex
from repro.montecarlo.dynamic_index import DynamicForestIndex

__all__ = [
    "WalkBatch",
    "simulate_alpha_walks",
    "estimate_single_source_walks",
    "WalkIndex",
    "ForestIndex",
    "DynamicForestIndex",
]
