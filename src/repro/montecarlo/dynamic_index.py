"""Mutable-graph forest index: a bank that repairs instead of rebuilding.

:class:`DynamicForestIndex` extends
:class:`~repro.montecarlo.forest_index.ForestIndex` with the arrow
records of :mod:`repro.forests.repair`.  At build time every forest's
consumed stack prefix is kept alongside it; when the graph mutates
(:class:`~repro.graph.delta.GraphDelta`), :meth:`mutated` produces a
*new* index over the new graph by replaying the surviving records and
drawing fresh arrows only where mutations invalidated them — exact in
distribution, and typically orders of magnitude fewer fresh draws than
a full rebuild (the ``repair_*`` counters prove it per call).

Mutation returns a new object rather than editing in place so the
serving layer's atomic generation swap keeps working: in-flight queries
hold the old index, the manager publishes the repaired one, the old one
retires when released.

The estimator/serving surface is inherited unchanged — a dynamic index
folds queries exactly like a static one, and the operator bank it
publishes to worker processes is the ordinary ``forest-index`` kind.
Only the *persistence* form differs: :meth:`save_dynamic_bank` stores
graph + forests + records (everything a later ``repro index mutate``
needs), under its own bank kind so the two artifact types cannot be
confused.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.counters import WorkCounters
from repro.exceptions import ConfigError
from repro.forests.forest import RootedForest
from repro.forests.repair import (
    ForestRecord,
    repair_forest,
    sample_forest_recorded,
)
from repro.graph.csr import Graph
from repro.graph.delta import GraphDelta
from repro.montecarlo.forest_index import ForestIndex, degree_checksum
from repro.rng import ensure_rng

__all__ = ["DynamicForestIndex", "DYNAMIC_BANK_KIND"]

#: Bank-manifest kind for the repairable on-disk artifact.
DYNAMIC_BANK_KIND = "dynamic-forest-index"


class DynamicForestIndex(ForestIndex):
    """A forest bank that supports exact incremental repair.

    Attributes
    ----------
    records:
        One :class:`~repro.forests.repair.ForestRecord` per stored
        forest — the replayable arrow stacks.
    """

    def __init__(self, graph: Graph, alpha: float,
                 forests: list[RootedForest], build_seconds: float, *,
                 records: list[ForestRecord], **kwargs):
        super().__init__(graph, alpha, forests, build_seconds, **kwargs)
        if len(records) != len(forests):
            raise ConfigError(
                f"{len(forests)} forests but {len(records)} records")
        self.records = records

    @classmethod
    def build(cls, graph: Graph, alpha: float, num_forests: int,
              rng: np.random.Generator | int | None = None,
              method: str = "cycle_popping",
              workers: int | None = 1,
              variance_mode: str = "improved") -> "DynamicForestIndex":
        """Sample ``num_forests`` forests, keeping their arrow records.

        The stored forests are bit-identical to
        :meth:`ForestIndex.build` at the same seed.  Recording is tied
        to the sampling loop, so the build always runs in-process;
        ``workers`` is accepted for signature parity and ignored, and
        ``method`` must stay ``"cycle_popping"`` (the only sampler with
        a stack formulation to record).  ``variance_mode`` must stay
        ``"improved"``: stratified sampling couples forests through a
        batch-wide grid whose arrow draws have no per-forest stack
        replay, so repaired forests could not reproduce the coupled
        law.
        """
        if num_forests <= 0:
            raise ConfigError("num_forests must be positive")
        if method not in ("cycle_popping", "auto"):
            raise ConfigError(
                f"dynamic indexes require the cycle_popping sampler, "
                f"got method={method!r}")
        if variance_mode != "improved":
            raise ConfigError(
                f"dynamic indexes require variance_mode='improved' "
                f"(recorded sampling has no stratified/control-variate "
                f"replay), got {variance_mode!r}")
        del workers
        counters = WorkCounters()
        generator = ensure_rng(rng)
        started = time.perf_counter()
        forests: list[RootedForest] = []
        records: list[ForestRecord] = []
        for _ in range(num_forests):
            forest, record = sample_forest_recorded(
                graph, alpha, rng=generator, counters=counters)
            forests.append(forest)
            records.append(record)
        for forest in forests:
            forest.component_degree_mass(graph.degrees)
        index = cls(graph, alpha, forests,
                    build_seconds=time.perf_counter() - started,
                    records=records)
        index.build_counters = counters
        return index

    @property
    def record_arrows(self) -> int:
        """Total recorded arrow draws across the bank (memory proxy)."""
        return sum(record.num_arrows for record in self.records)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def mutated(self, delta: GraphDelta,
                rng: np.random.Generator | int | None = None,
                ) -> tuple["DynamicForestIndex", WorkCounters]:
        """Apply ``delta`` and repair every forest against the result.

        Returns ``(new_index, repair_counters)``.  ``self`` is left
        untouched (old generation keeps serving until swapped out).
        The counters carry ``repair_fresh_steps`` — the only sampling
        work actually paid — alongside the replayed-read and
        dirty-node tallies; compare against a fresh build's
        ``walk_steps`` for the repair-vs-rebuild bound.
        """
        new_graph = delta.apply(self.graph)
        dirty = delta.touched_nodes()
        counters = WorkCounters()
        generator = ensure_rng(rng)
        started = time.perf_counter()
        forests: list[RootedForest] = []
        records: list[ForestRecord] = []
        for record in self.records:
            forest, new_record = repair_forest(
                new_graph, self.alpha, record, dirty, rng=generator,
                counters=counters)
            forests.append(forest)
            records.append(new_record)
        for forest in forests:
            forest.component_degree_mass(new_graph.degrees)
        index = DynamicForestIndex(
            new_graph, self.alpha, forests,
            build_seconds=time.perf_counter() - started,
            records=records)
        # cumulative construction cost: the original build plus every
        # repair so far (repairs add only repair_* work, no walk steps)
        index.build_counters = (WorkCounters() + self.build_counters
                                ).merge(counters)
        return index, counters

    # ------------------------------------------------------------------
    # Persistence (repairable artifact)
    # ------------------------------------------------------------------
    def save_dynamic_bank(self, path: str | os.PathLike) -> None:
        """Write the repairable bank: graph + forests + arrow records.

        Unlike :meth:`ForestIndex.save_bank` (fold operators only),
        this artifact is self-contained — ``repro index mutate`` loads
        it, applies a delta, and writes it back without needing the
        original dataset.
        """
        from repro.parallel.shared_bank import save_array_bank

        graph = self.graph
        record_offsets = np.concatenate(
            ([0], np.cumsum([record.num_arrows for record in self.records],
                            dtype=np.int64)))
        arrays = {
            "graph_indptr": graph.indptr,
            "graph_indices": graph.indices,
            "roots": np.stack([forest.roots for forest in self.forests]),
            "parents": np.stack([forest.parents for forest in self.forests]),
            "steps": np.asarray([forest.num_steps
                                 for forest in self.forests],
                                dtype=np.int64),
            "record_indptr": np.stack([record.indptr
                                       for record in self.records]),
            "record_arrows": (
                np.concatenate([record.arrows for record in self.records])
                if record_offsets[-1] else np.empty(0, dtype=np.int64)),
            "record_offsets": record_offsets,
        }
        if graph.weights is not None:
            arrays["graph_weights"] = graph.weights
        meta = {
            "kind": DYNAMIC_BANK_KIND,
            "alpha": float(self.alpha),
            "num_nodes": int(graph.num_nodes),
            "num_forests": int(self.num_forests),
            "directed": bool(graph.directed),
            "build_steps": int(self.build_steps),
            "build_seconds": float(self.build_seconds),
            "degree_checksum": int(degree_checksum(graph)),
            # dynamic banks always serialize the raw node space: the
            # arrow records replay against node ids, and repairs would
            # invalidate any cached relabeling anyway
            "bank_dtype": "float64",
            "node_order": "none",
            "variance_mode": "improved",
        }
        save_array_bank(path, arrays, meta)

    @classmethod
    def load_dynamic_bank(cls, path: str | os.PathLike,
                          ) -> "DynamicForestIndex":
        """Load a :meth:`save_dynamic_bank` directory.

        The graph travels inside the artifact (mutations change it, so
        it cannot be re-derived from any dataset), and its degree
        checksum is verified against the manifest on the way in.
        """
        from repro.parallel.shared_bank import load_array_bank

        arrays, meta = load_array_bank(path, mmap=False)
        if meta.get("kind") != DYNAMIC_BANK_KIND:
            raise ConfigError(
                f"bank is not a dynamic forest index "
                f"(kind={meta.get('kind')!r}); rebuild with "
                f"'repro index build --dynamic'")
        weights = arrays.get("graph_weights")
        graph = Graph(arrays["graph_indptr"], arrays["graph_indices"],
                      weights, directed=bool(meta.get("directed", False)),
                      validate=True)
        cls._check_graph_match(graph, int(meta["num_nodes"]),
                               meta.get("degree_checksum"),
                               "dynamic index bank")
        forests = [
            RootedForest(roots=np.ascontiguousarray(roots),
                         parents=np.ascontiguousarray(parents),
                         num_steps=int(steps), method="loaded")
            for roots, parents, steps in zip(
                arrays["roots"], arrays["parents"], arrays["steps"])]
        offsets = arrays["record_offsets"]
        flat = arrays["record_arrows"]
        records = [
            ForestRecord(
                indptr=np.ascontiguousarray(indptr),
                arrows=np.ascontiguousarray(
                    flat[int(offsets[i]):int(offsets[i + 1])]))
            for i, indptr in enumerate(arrays["record_indptr"])]
        index = cls(graph, float(meta["alpha"]), forests,
                    build_seconds=float(meta.get("build_seconds", 0.0)),
                    records=records,
                    build_steps=int(meta.get("build_steps", 0)))
        for forest in index.forests:
            forest.component_degree_mass(graph.degrees)
        return index
