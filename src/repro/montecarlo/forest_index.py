r"""Precomputed spanning-forest index (FORALV+ / SPEEDLV+, §5.3).

One sampled forest provides, for *every* node simultaneously, one
"rooted-in" observation — the reason the paper needs only ``O(log n)``
forests where the walk indexes need ``O(n log n)`` walks.  The index
stores per forest:

- the ``roots`` array (root label per node), and
- the per-tree degree mass ``Σ_{u∈tree} d_u`` (so the improved,
  variance-reduced estimator can run without touching the graph).

Space is ``O(n)`` per forest — ``O(n log n)`` total, matching
SPEEDPPR+ (Fig. 6) — while construction costs only
``num_forests · τ`` walk steps instead of ``Σ_u d_u / α`` (Fig. 5's
order-of-magnitude gap).
"""

from __future__ import annotations

import os
import time
import zlib

import numpy as np

from repro.counters import WorkCounters
from repro.exceptions import ConfigError
from repro.forests.estimators import (
    accumulate_cv_estimates,
    cv_combine,
    source_estimate_basic,
    source_estimate_improved,
    target_estimate_basic,
    target_estimate_improved,
)
from repro.forests.forest import RootedForest
from repro.forests.sampling import sample_forests
from repro.graph.csr import Graph

__all__ = ["ForestIndex", "degree_checksum", "node_ordering",
           "NODE_ORDERS", "BANK_DTYPES"]

#: Sparse operators exported to / rebuilt from array banks, in a fixed
#: order so bank layouts are deterministic.
_OPERATOR_NAMES = ("tree_sum", "spread_source", "scatter_root",
                   "spread_target", "gather_root")

#: Node relabelings a bank can be serialized under (format v3).
NODE_ORDERS = ("none", "degree", "bfs")

#: Storage dtypes for the operator value arrays (format v3).
BANK_DTYPES = ("float64", "float32")

#: Arrays cast to float32 under ``bank_dtype="float32"`` (the operator
#: values plus the segment degree-mass vector they were derived from).
_FLOAT_BANK_ARRAYS = frozenset(
    {f"{name}_data" for name in _OPERATOR_NAMES} | {"segment_degree"})

#: Index arrays narrowed to int32 under ``bank_dtype="float32"`` (CSR
#: structure; int32 is scipy's native index dtype and exact as long as
#: dimensions stay below 2³¹).
_INDEX_BANK_ARRAYS = frozenset(
    {f"{name}_indptr" for name in _OPERATOR_NAMES}
    | {f"{name}_indices" for name in _OPERATOR_NAMES})


def node_ordering(graph: Graph, kind: str) -> np.ndarray | None:
    """The bank row permutation for a relabeling ``kind``.

    Returns ``perm`` such that bank row ``i`` serves node ``perm[i]``,
    or ``None`` for the identity.  ``"degree"`` sorts rows by
    descending weighted degree (stable, so equal-degree nodes keep
    their id order); ``"bfs"`` orders rows by breadth-first discovery
    from node 0, appending unreached components in node-id order.
    Both pack the heavily-referenced rows of the fold operators next
    to each other, which is the cache win of bank format v3.
    """
    if kind in (None, "none"):
        return None
    if kind == "degree":
        return np.argsort(-graph.degrees, kind="stable").astype(np.int64)
    if kind == "bfs":
        from collections import deque

        n = graph.num_nodes
        visited = np.zeros(n, dtype=bool)
        order = np.empty(n, dtype=np.int64)
        filled = 0
        for start in range(n):
            if visited[start]:
                continue
            visited[start] = True
            queue = deque((start,))
            while queue:
                node = queue.popleft()
                order[filled] = node
                filled += 1
                for neighbor in graph.indices[
                        graph.indptr[node]:graph.indptr[node + 1]]:
                    if not visited[neighbor]:
                        visited[neighbor] = True
                        queue.append(neighbor)
        return order
    raise ConfigError(
        f"node order must be one of {NODE_ORDERS}, got {kind!r}")


def degree_checksum(graph: Graph) -> int:
    """CRC-32 of the graph's weighted degree vector.

    Saved inside every index artifact so :meth:`ForestIndex.load` /
    :meth:`ForestIndex.load_bank` can refuse an index built for a
    *different* graph of the same size — silently folding foreign
    roots over the wrong degrees produces garbage estimates with no
    error anywhere downstream.
    """
    return zlib.crc32(np.ascontiguousarray(
        graph.degrees, dtype=np.float64).tobytes())


class _BankOperators:
    r"""The whole bank's estimator fold as two sparse products.

    Every forest estimator is *linear* in the residual, so the bank
    average over ``F`` forests is one linear operator.  Concatenating
    all forests' tree partitions into a single global segment space
    (``ΣS`` segments) gives, e.g. for the improved source estimator,

    .. math:: \hat a = \tfrac{1}{F}\, Q\, (P\, r)

    where ``P`` (``ΣS × n``) sums each tree's residual mass and ``Q``
    (``n × ΣS``) redistributes it (``d_v / Σ_{u∈tree} d_u`` weights).
    A micro-batch of ``B`` residuals is then just two CSR × dense
    products with ``F·n`` nonzeros each — the per-forest Python and
    indexing overhead of the per-query bincount fold is paid *once per
    batch* instead of once per query.  CSR rows accumulate column-wise
    independently, so each query's answer is bit-identical for every
    batch size and composition.

    **Row relabeling (bank format v3).**  :meth:`permuted` reorders
    the *output rows* of the four ``Q`` operators so hot rows sit next
    to each other on disk and in cache; ``tree_sum`` — whose stored
    nonzero order fixes every segment sum's float accumulation — never
    moves, and each ``Q`` row is gathered verbatim, so unpermuting the
    fold output reproduces the identity layout's answers bit-for-bit.
    """

    #: Identity-layout defaults, as class attributes so every
    #: construction path (__init__, from_arrays, restricted) starts
    #: unpermuted without repeating the assignment.
    node_order: np.ndarray | None = None
    _row_of: np.ndarray | None = None

    def __init__(self, forests: list[RootedForest], degrees: np.ndarray):
        import scipy.sparse as sparse

        num_nodes = degrees.size
        node_ids = np.arange(num_nodes)
        seg_cols = []      # global segment id per (forest, node)
        seg_roots = []     # root node of each global segment
        seg_degree = []    # safe degree mass of each global segment
        root_cols = []     # roots[v] per (forest, node), for basic target
        offset = 0
        for forest in forests:
            labels = forest.roots
            order = np.argsort(labels, kind="stable")
            sorted_labels = labels[order]
            boundaries = np.empty(num_nodes, dtype=bool)
            boundaries[0] = True
            np.not_equal(sorted_labels[1:], sorted_labels[:-1],
                         out=boundaries[1:])
            starts = np.flatnonzero(boundaries)
            root_ids = sorted_labels[starts]
            seg_of = np.empty(num_nodes, dtype=np.int64)
            seg_of[order] = np.repeat(
                np.arange(root_ids.size),
                np.diff(np.append(starts, num_nodes)))
            tree_degree = forest.component_degree_mass(degrees)[root_ids]
            seg_cols.append(seg_of + offset)
            seg_roots.append(root_ids)
            # a zero-mass tree is exactly a degree-0 singleton; guard the
            # division and let the estimators overwrite those nodes
            seg_degree.append(np.where(tree_degree > 0, tree_degree, 1.0))
            root_cols.append(labels)
            offset += root_ids.size

        cols = np.concatenate(seg_cols)
        rows = np.tile(node_ids, len(forests))
        self.num_forests = len(forests)
        # whole-node-space operators: output rows ARE global node ids
        self.local_nodes = None
        self.degree_zero = np.flatnonzero(degrees == 0)
        self.degree_zero_nodes = self.degree_zero
        segment_degree = np.concatenate(seg_degree)
        self.segment_degree = segment_degree
        self.segment_root = np.concatenate(seg_roots)
        ones = np.ones(cols.size)
        # P: per-tree residual sums (global segment space)
        self.tree_sum = sparse.csr_matrix(
            (ones, (cols, rows)), shape=(offset, num_nodes))
        # Q variants: redistribute tree sums back to nodes
        self.spread_source = sparse.csr_matrix(
            (np.tile(degrees, len(forests)) / segment_degree[cols],
             (rows, cols)), shape=(num_nodes, offset))
        self.scatter_root = sparse.csr_matrix(
            (np.ones(offset), (self.segment_root, np.arange(offset))),
            shape=(num_nodes, offset))
        self.spread_target = sparse.csr_matrix(
            (1.0 / segment_degree[cols], (rows, cols)),
            shape=(num_nodes, offset))
        # basic target needs no segment space: est[v] = Σ_f r(root_f(v))
        self.gather_root = sparse.csr_matrix(
            (np.ones(rows.size), (rows, np.concatenate(root_cols))),
            shape=(num_nodes, num_nodes))

    # ------------------------------------------------------------------
    # Cache-aware row relabeling (bank format v3)
    # ------------------------------------------------------------------
    @property
    def row_of_node(self) -> np.ndarray | None:
        """Inverse of :attr:`node_order`: ``row_of_node[v]`` is the
        operator row serving node ``v`` (``None`` on identity banks)."""
        if self.node_order is None:
            return None
        if self._row_of is None:
            order = np.asarray(self.node_order)
            row_of = np.empty(order.size, dtype=np.int64)
            row_of[order] = np.arange(order.size)
            self._row_of = row_of
        return self._row_of

    @classmethod
    def permuted(cls, source: "_BankOperators",
                 node_order: np.ndarray) -> "_BankOperators":
        """Relabel the Q-operator output rows by ``node_order``.

        ``node_order[i]`` is the node served by output row ``i``.
        Only the output row space moves: a CSR row gather copies each
        row's stored nonzeros (order and values) verbatim, and
        ``tree_sum`` is shared untouched, so every estimate computed
        through this layout — after undoing the permutation on the
        output — is bit-identical to the identity layout's.
        """
        if source.local_nodes is not None:
            raise ConfigError(
                "shard banks cannot be relabeled; apply the node order "
                "to the whole-node-space bank before restricting")
        if source.node_order is not None:
            raise ConfigError("operators are already relabeled")
        node_order = np.asarray(node_order, dtype=np.int64)
        num_rows = source.gather_root.shape[0]
        if node_order.shape != (num_rows,) or not np.array_equal(
                np.sort(node_order), np.arange(num_rows)):
            raise ConfigError(
                f"node_order must be a permutation of all {num_rows} "
                f"node ids")
        ops = object.__new__(cls)
        ops.num_forests = source.num_forests
        ops.local_nodes = None
        ops.node_order = node_order
        ops.segment_root = source.segment_root
        ops.segment_degree = source.segment_degree
        ops.tree_sum = source.tree_sum
        for name in ("spread_source", "scatter_root", "spread_target",
                     "gather_root"):
            setattr(ops, name, getattr(source, name)[node_order])
        row_of = np.empty(num_rows, dtype=np.int64)
        row_of[node_order] = np.arange(num_rows)
        ops._row_of = row_of
        dz_nodes = np.asarray(source.degree_zero_nodes)
        ops.degree_zero = row_of[dz_nodes]    # permuted row positions
        ops.degree_zero_nodes = dz_nodes      # global node ids
        return ops

    # ------------------------------------------------------------------
    # Array-bank (de)hydration — the zero-copy serving representation
    # ------------------------------------------------------------------
    def to_arrays(self) -> dict[str, np.ndarray]:
        """Flatten every operator into named CSR triplets.

        The result is exactly what :class:`repro.parallel.shared_bank`
        carriers transport: ``<op>_indptr`` / ``<op>_indices`` /
        ``<op>_data`` per operator, plus the degree-zero node list and
        the per-segment root / degree-mass vectors.
        """
        arrays: dict[str, np.ndarray] = {
            "degree_zero": self.degree_zero,
            "segment_root": self.segment_root,
            "segment_degree": self.segment_degree,
        }
        if self.local_nodes is not None:
            # shard-restricted bank: output rows are local positions
            # into this owned-node list (degree_zero included)
            arrays["local_nodes"] = self.local_nodes
        if self.node_order is not None:
            # relabeled bank (format v3): row i serves node_order[i];
            # degree_zero holds permuted row positions
            arrays["node_order"] = self.node_order
        for name in _OPERATOR_NAMES:
            matrix = getattr(self, name)
            arrays[f"{name}_indptr"] = matrix.indptr
            arrays[f"{name}_indices"] = matrix.indices
            arrays[f"{name}_data"] = matrix.data
        return arrays

    @classmethod
    def from_arrays(cls, arrays: dict[str, np.ndarray], *,
                    num_nodes: int, num_forests: int) -> "_BankOperators":
        """Rebuild operators over bank arrays without copying them.

        An empty CSR matrix is created and its ``data`` / ``indices`` /
        ``indptr`` attributes assigned directly — the ``csr_matrix``
        constructor would copy the arrays (and downcast the index
        dtype), defeating the shared-memory / memmap attach.
        """
        import scipy.sparse as sparse

        ops = object.__new__(cls)
        ops.num_forests = int(num_forests)
        ops.degree_zero = np.asarray(arrays["degree_zero"])
        ops.segment_root = np.asarray(arrays["segment_root"])
        ops.segment_degree = np.asarray(arrays["segment_degree"])
        local = arrays.get("local_nodes")
        ops.local_nodes = None if local is None else np.asarray(local)
        order = arrays.get("node_order")
        if order is not None:
            ops.node_order = np.asarray(order)
        if ops.local_nodes is None:
            num_rows = num_nodes
            # relabeled bank: degree_zero holds permuted row positions
            ops.degree_zero_nodes = (
                ops.degree_zero if ops.node_order is None
                else np.asarray(ops.node_order)[ops.degree_zero])
        else:  # shard bank: degree_zero holds local row positions
            num_rows = ops.local_nodes.size
            ops.degree_zero_nodes = ops.local_nodes[ops.degree_zero]
        num_segments = ops.segment_root.size
        shapes = {
            "tree_sum": (num_segments, num_nodes),
            "spread_source": (num_rows, num_segments),
            "scatter_root": (num_rows, num_segments),
            "spread_target": (num_rows, num_segments),
            "gather_root": (num_rows, num_nodes),
        }
        for name in _OPERATOR_NAMES:
            matrix = sparse.csr_matrix(shapes[name])
            matrix.indptr = np.asarray(arrays[f"{name}_indptr"])
            matrix.indices = np.asarray(arrays[f"{name}_indices"])
            matrix.data = np.asarray(arrays[f"{name}_data"])
            setattr(ops, name, matrix)
        return ops

    @classmethod
    def restricted(cls, source: "_BankOperators",
                   local_nodes: np.ndarray) -> "_BankOperators":
        r"""Row-restrict whole-bank operators to one shard's nodes.

        The fold stays ``(1/F) Q (P r)``; sharding partitions it by
        **output rows**.  The ``Q`` operators keep only the owned
        rows (a CSR row slice preserves each row's stored nonzero
        order), while ``P`` (``tree_sum``) keeps only the segments
        those rows touch — **with every member column intact**, owned
        or not.  That is the cut-edge handling: residual mass on a
        non-owned node still reaches an owned node's estimate through
        their shared tree segment, exactly as in the unsharded fold.

        The surviving segment ids are compacted through a strictly
        monotone old→new map (``searchsorted`` into the sorted
        survivor list), so per-row nonzero order — and therefore
        scipy's accumulation order — is unchanged.  Every output
        entry is then computed by the *identical* sequence of
        floating-point operations as the unsharded fold:
        shard-restricted estimates are bit-identical to the matching
        rows of the full fold.
        """
        import scipy.sparse as sparse

        if source.local_nodes is not None:
            raise ConfigError(
                "cannot restrict an already-restricted operator set; "
                "restrict the whole-node-space bank instead")
        local_nodes = np.asarray(local_nodes, dtype=np.int64)
        if local_nodes.size > 1 and np.any(np.diff(local_nodes) <= 0):
            raise ConfigError("local_nodes must be strictly ascending")
        ops = object.__new__(cls)
        ops.num_forests = source.num_forests
        ops.local_nodes = local_nodes
        if source.node_order is not None:
            # relabeled parent: node v's operator row is row_of_node[v].
            # Gathering those rows in local-node order yields shard
            # operators byte-identical to restricting an identity-layout
            # parent, so the permutation never leaks into shard banks.
            take = source.row_of_node[local_nodes]
        else:
            take = local_nodes
        spread_source = source.spread_source[take]
        scatter_root = source.scatter_root[take]
        spread_target = source.spread_target[take]
        ops.gather_root = source.gather_root[take]
        # segments touched by any owned row (scatter_root's columns
        # are a subset: a root is a member of its own segment)
        needed = np.unique(np.concatenate(
            (spread_source.indices, scatter_root.indices,
             spread_target.indices))) if local_nodes.size \
            else np.empty(0, dtype=spread_source.indices.dtype)
        ops.tree_sum = source.tree_sum[needed]
        ops.segment_root = np.asarray(source.segment_root)[needed]
        ops.segment_degree = np.asarray(source.segment_degree)[needed]
        for name, sliced in (("spread_source", spread_source),
                             ("scatter_root", scatter_root),
                             ("spread_target", spread_target)):
            matrix = sparse.csr_matrix(
                (sliced.shape[0], int(needed.size)))
            matrix.indptr = sliced.indptr
            matrix.indices = np.searchsorted(needed, sliced.indices) \
                .astype(sliced.indices.dtype)
            matrix.data = sliced.data
            setattr(ops, name, matrix)
        dz = np.asarray(source.degree_zero_nodes)
        positions = np.searchsorted(local_nodes, dz)
        in_range = positions < local_nodes.size
        owned = np.zeros(dz.size, dtype=bool)
        owned[in_range] = local_nodes[positions[in_range]] == dz[in_range]
        ops.degree_zero = positions[owned]          # local rows
        ops.degree_zero_nodes = dz[owned]           # global node ids
        return ops


class ForestIndex:
    """A bank of presampled rooted spanning forests.

    Attributes
    ----------
    forests:
        The stored :class:`~repro.forests.forest.RootedForest` objects
        (roots + parents arrays; parents are kept for applications and
        validation, roots are what queries read).
    build_seconds, build_steps:
        Construction cost (wall clock / walk steps) for Fig. 5.
    """

    def __init__(self, graph: Graph, alpha: float,
                 forests: list[RootedForest], build_seconds: float,
                 *, num_forests: int | None = None,
                 build_steps: int | None = None):
        self.graph = graph
        self.alpha = alpha
        self.forests = forests
        self.build_seconds = build_seconds
        # bank-attached indexes carry no forest objects, only the fold
        # operators — the count and build cost come from the bank meta
        self._num_forests = (len(forests) if num_forests is None
                             else int(num_forests))
        self.build_steps = (sum(forest.num_steps for forest in forests)
                            if build_steps is None else int(build_steps))
        self.build_counters = WorkCounters(
            walk_steps=self.build_steps,
            cycle_pops=(sum(forest.num_pops for forest in forests)
                        if forests else
                        max(self.build_steps
                            - self._num_forests * graph.num_nodes, 0)),
            forests_sampled=self._num_forests)
        self._operators_cache: _BankOperators | None = None
        # shard-restricted indexes fold only these rows of the
        # estimate vector (None = the whole node space, the default)
        self.local_nodes: np.ndarray | None = None
        self.shard_index: int | None = None
        self.shard_count: int | None = None
        self.shard_strategy: str | None = None
        # provenance recorded in (and restored from) bank meta, v3
        self.variance_mode: str = "improved"
        self.bank_node_order: str = "none"
        self.bank_dtype: str = "float64"

    @classmethod
    def build(cls, graph: Graph, alpha: float, num_forests: int,
              rng: np.random.Generator | int | None = None,
              method: str = "cycle_popping",
              workers: int | None = 1,
              variance_mode: str = "improved") -> "ForestIndex":
        """Sample and store ``num_forests`` independent forests.

        ``workers > 1`` fans the sampling out over worker processes via
        the chunked engine (:mod:`repro.parallel.engine`); the stored
        forests are identical for every worker count at a fixed seed,
        so the knob only changes build wall clock.  The build's work
        counters land on :attr:`build_counters`.

        ``variance_mode`` is recorded on the index (and in any bank it
        serializes).  ``"stratified"`` additionally couples the sampled
        forests through the Latin-hypercube grid of
        :func:`repro.forests.batch_sampling.sample_forests_batch` —
        each forest's marginal law is unchanged (every estimate stays
        unbiased), only the bank-mean variance drops, which is what
        lets :meth:`recommended_size` shrink the bank.
        """
        from repro.core.config import VARIANCE_MODES
        from repro.parallel.engine import sample_forests_parallel

        if num_forests <= 0:
            raise ConfigError("num_forests must be positive")
        if variance_mode not in VARIANCE_MODES:
            raise ConfigError(
                f"variance_mode must be one of {VARIANCE_MODES}, "
                f"got {variance_mode!r}")
        if variance_mode == "control_variate" and graph.directed:
            raise ConfigError(
                "variance_mode='control_variate' is only unbiased on "
                "undirected graphs")
        counters = WorkCounters()
        stratified = variance_mode == "stratified"
        started = time.perf_counter()
        if workers is not None and workers == 1:
            # serial stratified build couples the WHOLE bank in one
            # stratum grid — the strongest coupling available
            sample_method = "stratified" if stratified else method
            forests = list(sample_forests(graph, alpha, num_forests, rng=rng,
                                          method=sample_method,
                                          counters=counters))
        else:
            forests = sample_forests_parallel(graph, alpha, num_forests,
                                              rng=rng, workers=workers,
                                              method=method,
                                              counters=counters,
                                              stratified=stratified)
        # materialise each forest's degree-mass cache now so queries
        # never pay for it
        for forest in forests:
            forest.component_degree_mass(graph.degrees)
        index = cls(graph, alpha, forests,
                    build_seconds=time.perf_counter() - started)
        index.build_counters = counters
        index.variance_mode = variance_mode
        return index

    @classmethod
    def recommended_size(cls, graph: Graph, epsilon: float | None = None,
                         variance_mode: str = "improved") -> int:
        r"""§5.3 sizing with the variance-mode discount.

        The bank needs ``base = ⌈ln n⌉`` forests for the paper's
        ``O(log n)`` concentration; given a target relative error ε it
        needs

        .. math:: \omega = \max\bigl(\lceil \ln n \rceil,\;
                  \lceil \lceil \ln n \rceil / (\varepsilon g) \rceil\bigr)

        where ``g`` is the mode's measured variance gain
        (:data:`repro.core.config.VARIANCE_GAIN`): a mode whose
        bank-mean variance is ``g×`` smaller at equal forest count
        matches the baseline error bar with ``1/g`` of the forests.
        The ``⌈ln n⌉`` floor is never discounted — concentration still
        needs that many independent samples.
        """
        from repro.core.config import VARIANCE_GAIN

        if variance_mode not in VARIANCE_GAIN:
            raise ConfigError(
                f"variance_mode must be one of "
                f"{tuple(VARIANCE_GAIN)}, got {variance_mode!r}")
        base = max(1, int(np.ceil(np.log(max(graph.num_nodes, 2)))))
        if epsilon is None:
            return base
        if epsilon <= 0:
            raise ConfigError("epsilon must be positive")
        return max(base, int(np.ceil(
            base / (epsilon * VARIANCE_GAIN[variance_mode]))))

    # ------------------------------------------------------------------
    @property
    def num_forests(self) -> int:
        """Number of forests folded by this index (stored or attached)."""
        return self._num_forests

    @property
    def size_bytes(self) -> int:
        """Memory footprint: roots + per-tree degree masses per forest.

        ``parents`` arrays are excluded — queries never read them, and
        the paper's index stores exactly root + component-mass
        information (Fig. 6 compares on this footing).  An
        operator-only (bank-attached) index reports its operator
        arrays instead.
        """
        if not self.forests and self._operators_cache is not None:
            return sum(array.nbytes for array
                       in self._operators_cache.to_arrays().values())
        total = 0
        for forest in self.forests:
            total += forest.roots.nbytes
            total += forest.component_degree_mass(self.graph.degrees).nbytes
        return total

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | os.PathLike) -> None:
        """Serialise the index to an ``.npz`` file.

        Stores the roots/parents matrices, α, and the build-cost
        metadata; the graph itself is *not* stored (pass the same graph
        to :meth:`load`).
        """
        if not self.forests:
            raise ConfigError(
                "operator-only index cannot be saved as .npz (no forests "
                "stored); use save_bank on the original index instead")
        np.savez_compressed(
            path,
            alpha=np.float64(self.alpha),
            num_nodes=np.int64(self.graph.num_nodes),
            degree_checksum=np.uint32(degree_checksum(self.graph)),
            roots=np.stack([forest.roots for forest in self.forests]),
            parents=np.stack([forest.parents for forest in self.forests]),
            steps=np.asarray([forest.num_steps for forest in self.forests],
                             dtype=np.int64),
            build_seconds=np.float64(self.build_seconds),
        )

    @staticmethod
    def _check_graph_match(graph: Graph, num_nodes: int,
                           checksum: int | None, origin: str) -> None:
        """Refuse to attach an index to a graph it was not built for."""
        if int(num_nodes) != graph.num_nodes:
            raise ConfigError(
                f"{origin} was built for a graph with {int(num_nodes)} "
                f"nodes, got {graph.num_nodes}")
        if checksum is not None and int(checksum) != degree_checksum(graph):
            raise ConfigError(
                f"{origin} was built for a different graph: the degree "
                f"checksum does not match (same node count, different "
                f"edges or weights)")

    @classmethod
    def load(cls, path: str | os.PathLike, graph: Graph) -> "ForestIndex":
        """Load an index saved with :meth:`save` for the same graph.

        Raises :class:`~repro.exceptions.ConfigError` when the file was
        built for a different graph — node count and (for files written
        since the checksum was added) the degree checksum must match.
        """
        from repro.forests.forest import RootedForest

        with np.load(path) as data:
            checksum = (int(data["degree_checksum"])
                        if "degree_checksum" in data else None)
            cls._check_graph_match(graph, int(data["num_nodes"]), checksum,
                                   f"index file {os.fspath(path)!r}")
            forests = [
                RootedForest(roots=roots, parents=parents,
                             num_steps=int(steps), method="loaded")
                for roots, parents, steps in zip(
                    data["roots"], data["parents"], data["steps"])]
            index = cls(graph, float(data["alpha"]), forests,
                        build_seconds=float(data["build_seconds"]))
        for forest in index.forests:
            forest.component_degree_mass(graph.degrees)
        return index

    # ------------------------------------------------------------------
    # Sharding
    # ------------------------------------------------------------------
    def restrict(self, local_nodes: np.ndarray, *, shard_index: int = 0,
                 shard_count: int = 1,
                 strategy: str = "hash") -> "ForestIndex":
        """An operator-only index folding just the owned estimate rows.

        The restriction is pure slicing of the cached fold operators
        (see :meth:`_BankOperators.restricted`) — no resampling, no
        arithmetic — so it is cheap to recompute per generation and
        the restricted rows stay bit-identical to the same rows of
        this index's fold.  The returned index keeps the *full* graph
        (pushes still run over the whole node space; only the fold is
        partitioned) and the full-graph fingerprint, so shard banks
        attach against the same shared CSR segments as the global one.
        """
        restricted = ForestIndex(
            self.graph, self.alpha, [],
            build_seconds=self.build_seconds,
            num_forests=self.num_forests, build_steps=self.build_steps)
        restricted._operators_cache = _BankOperators.restricted(
            self._operators, local_nodes)
        restricted.local_nodes = restricted._operators_cache.local_nodes
        restricted.shard_index = int(shard_index)
        restricted.shard_count = int(shard_count)
        restricted.shard_strategy = str(strategy)
        return restricted

    # ------------------------------------------------------------------
    # Array-bank persistence / attach (zero-copy serving path)
    # ------------------------------------------------------------------
    def bank_arrays(self, *, node_order: str | None = None,
                    bank_dtype: str = "float64"
                    ) -> tuple[dict[str, np.ndarray], dict]:
        """The ``(arrays, meta)`` bank contents for this index.

        The arrays are the flattened fold operators (see
        :meth:`_BankOperators.to_arrays`); the meta records α, the
        graph fingerprint (node count + degree checksum) and the build
        cost so an attached index reproduces ``num_forests`` /
        ``build_steps`` exactly.

        Bank format v3 knobs, both applied at serialization time only:

        - ``node_order`` (``"degree"`` / ``"bfs"``) relabels the Q
          operators' output rows cache-aware (see
          :meth:`_BankOperators.permuted`); the permutation rides in
          the bank and every query surface unpermutes its output, so
          float64 answers are byte-identical to the identity layout.
        - ``bank_dtype="float32"`` stores operator values in float32
          and CSR indices in int32, halving the bank's bytes; folds
          then run from rounded operator entries, so answers carry a
          bounded relative error instead of being byte-identical (see
          BENCHMARKING.md for the measured bound).
        """
        order_kind = "none" if node_order in (None, "none") \
            else str(node_order)
        if bank_dtype not in BANK_DTYPES:
            raise ConfigError(
                f"bank_dtype must be one of {BANK_DTYPES}, "
                f"got {bank_dtype!r}")
        ops = self._operators
        if order_kind != "none":
            if self.local_nodes is not None:
                raise ConfigError(
                    "shard banks cannot be relabeled; order the "
                    "whole-node-space bank before restricting")
            ops = _BankOperators.permuted(
                ops, node_ordering(self.graph, order_kind))
        elif ops.node_order is not None:
            # re-serializing an attached relabeled bank keeps its order
            order_kind = self.bank_node_order
        arrays = ops.to_arrays()
        if bank_dtype == "float32":
            int32_max = np.iinfo(np.int32).max
            cast: dict[str, np.ndarray] = {}
            for name, array in arrays.items():
                if name in _FLOAT_BANK_ARRAYS:
                    cast[name] = np.asarray(array, dtype=np.float32)
                elif name in _INDEX_BANK_ARRAYS:
                    if array.size and int(array[-1] if name.endswith(
                            "indptr") else array.max()) >= int32_max:
                        raise ConfigError(
                            "bank too large for int32 indices; use "
                            "bank_dtype='float64'")
                    cast[name] = np.asarray(array, dtype=np.int32)
                else:
                    cast[name] = array
            arrays = cast
        meta = {
            "kind": "forest-index",
            "alpha": float(self.alpha),
            "num_nodes": int(self.graph.num_nodes),
            "num_forests": int(self.num_forests),
            "build_steps": int(self.build_steps),
            "build_seconds": float(self.build_seconds),
            "degree_checksum": int(degree_checksum(self.graph)),
            "bank_dtype": bank_dtype,
            "node_order": order_kind,
            "variance_mode": self.variance_mode,
        }
        if self.local_nodes is not None:
            # bank format v2: shard provenance rides in the meta; the
            # num_nodes / degree_checksum fingerprint stays the FULL
            # graph's, because shard banks attach against it
            meta.update({
                "shard_index": int(self.shard_index or 0),
                "shard_count": int(self.shard_count or 1),
                "shard_strategy": str(self.shard_strategy or "hash"),
                "shard_nodes": int(self.local_nodes.size),
            })
        return arrays, meta

    def save_bank(self, path: str | os.PathLike, *,
                  node_order: str | None = None,
                  bank_dtype: str = "float64") -> None:
        """Write the uncompressed, memmap-able bank directory.

        Unlike :meth:`save`, the result can be attached in O(1): one
        plain ``.npy`` file per operator array plus ``manifest.json``
        (see :func:`repro.parallel.shared_bank.save_array_bank`), so
        ``np.load(..., mmap_mode="r")`` maps a multi-hundred-MB bank
        without copying a byte.  ``node_order`` / ``bank_dtype`` are
        the format-v3 layout knobs of :meth:`bank_arrays`.
        """
        from repro.parallel.shared_bank import save_array_bank

        arrays, meta = self.bank_arrays(node_order=node_order,
                                        bank_dtype=bank_dtype)
        save_array_bank(path, arrays, meta)

    def bank_nbytes(self, *, bank_dtype: str = "float64") -> int:
        """Serialized bank payload size at ``bank_dtype``, without
        materialising the cast (Fig. 6's dtype-aware size axis)."""
        if bank_dtype not in BANK_DTYPES:
            raise ConfigError(
                f"bank_dtype must be one of {BANK_DTYPES}, "
                f"got {bank_dtype!r}")
        total = 0
        for name, array in self._operators.to_arrays().items():
            itemsize = array.itemsize
            if bank_dtype == "float32" and (
                    name in _FLOAT_BANK_ARRAYS
                    or name in _INDEX_BANK_ARRAYS):
                itemsize = 4
            total += array.size * itemsize
        return total

    @classmethod
    def attach_bank(cls, arrays: dict[str, np.ndarray], meta: dict,
                    graph: Graph) -> "ForestIndex":
        """Build an operator-only index over externally owned arrays.

        ``arrays``/``meta`` come from :func:`load_array_bank` (memmap)
        or an attached shared-memory bank; nothing is copied.  The
        resulting index serves :meth:`estimate_source_many` /
        :meth:`estimate_target_many` (all the batch solvers need) but
        has no per-forest objects.
        """
        if meta.get("kind") != "forest-index":
            raise ConfigError(
                f"bank is not a forest index (kind={meta.get('kind')!r})")
        cls._check_graph_match(graph, int(meta["num_nodes"]),
                               meta.get("degree_checksum"), "index bank")
        index = cls(graph, float(meta["alpha"]), [],
                    build_seconds=float(meta.get("build_seconds", 0.0)),
                    num_forests=int(meta["num_forests"]),
                    build_steps=int(meta.get("build_steps", 0)))
        index._operators_cache = _BankOperators.from_arrays(
            arrays, num_nodes=graph.num_nodes,
            num_forests=int(meta["num_forests"]))
        # v1/v2 banks predate these keys: identity layout, float64
        index.variance_mode = str(meta.get("variance_mode", "improved"))
        index.bank_node_order = str(meta.get("node_order", "none"))
        index.bank_dtype = str(meta.get("bank_dtype", "float64"))
        if index._operators_cache.local_nodes is not None:
            index.local_nodes = index._operators_cache.local_nodes
            index.shard_index = int(meta.get("shard_index", 0))
            index.shard_count = int(meta.get("shard_count", 1))
            index.shard_strategy = str(meta.get("shard_strategy", "hash"))
        return index

    @classmethod
    def load_bank(cls, path: str | os.PathLike, graph: Graph, *,
                  mmap: bool = True) -> "ForestIndex":
        """Attach to a :meth:`save_bank` directory (memmap by default)."""
        from repro.parallel.shared_bank import load_array_bank

        arrays, meta = load_array_bank(path, mmap=mmap)
        return cls.attach_bank(arrays, meta, graph)

    # ------------------------------------------------------------------
    # Batched estimation (the serving layer's micro-batch fold)
    # ------------------------------------------------------------------
    @property
    def _operators(self) -> _BankOperators:
        """Whole-bank sparse fold operators (lazy, cached)."""
        if self._operators_cache is None:
            if not self.forests:
                raise ConfigError(
                    "operator-only index lost its operators — rebuild or "
                    "reattach the bank")
            self._operators_cache = _BankOperators(self.forests,
                                                   self.graph.degrees)
        return self._operators_cache

    def _as_batch(self, residuals: np.ndarray) -> np.ndarray:
        """Validate and transpose a ``(B, n)`` batch to ``(n, B)``."""
        residuals = np.atleast_2d(np.asarray(residuals, dtype=np.float64))
        if residuals.shape[1] != self.graph.num_nodes:
            raise ConfigError(
                f"residuals must have {self.graph.num_nodes} columns, "
                f"got {residuals.shape[1]}")
        return np.ascontiguousarray(residuals.T)

    def estimate_source_many(self, residuals: np.ndarray, *,
                             improved: bool = True) -> np.ndarray:
        """Single-source estimates for a *batch* of residual vectors.

        ``residuals`` has shape ``(B, n)``; the return value matches.
        The whole bank folds in two CSR products (see
        :class:`_BankOperators`), so per-forest indexing work is paid
        once per batch instead of once per query — the serving
        scheduler's throughput win.  Each query's row is bit-identical
        for every batch size and composition (CSR rows accumulate each
        column independently in a fixed nonzero order), which is what
        makes batched serving byte-equal to per-query solving.
        """
        batch = self._as_batch(residuals)
        ops = self._operators
        tree_sums = ops.tree_sum @ batch
        spread = ops.spread_source if improved else ops.scatter_root
        estimates = spread @ tree_sums
        estimates /= ops.num_forests
        if ops.node_order is not None:
            # relabeled bank: undo the row permutation (a pure row
            # gather), after which row v is node v again and answers
            # match the identity layout bit-for-bit
            estimates = estimates[ops.row_of_node]
        if improved and ops.degree_zero.size:
            # degree-0 singletons: the estimator returns the node's own
            # residual in every forest.  degree_zero indexes the OUTPUT
            # rows (local positions on a shard bank), degree_zero_nodes
            # the residual (always global node ids); the two coincide
            # on a whole-node-space bank, and after unpermuting a
            # relabeled bank the output rows are global ids too.
            rows = (ops.degree_zero if ops.node_order is None
                    else ops.degree_zero_nodes)
            estimates[rows] = batch[ops.degree_zero_nodes]
        return estimates.T

    def estimate_target_many(self, residuals: np.ndarray, *,
                             improved: bool = True) -> np.ndarray:
        """Single-target analogue of :meth:`estimate_source_many`."""
        batch = self._as_batch(residuals)
        ops = self._operators
        if not improved:
            estimates = ops.gather_root @ batch
            estimates /= ops.num_forests
            if ops.node_order is not None:
                estimates = estimates[ops.row_of_node]
            return estimates.T
        tree_sums = ops.tree_sum @ (batch * self.graph.degrees[:, None])
        estimates = ops.spread_target @ tree_sums
        estimates /= ops.num_forests
        if ops.node_order is not None:
            estimates = estimates[ops.row_of_node]
        if ops.degree_zero.size:
            rows = (ops.degree_zero if ops.node_order is None
                    else ops.degree_zero_nodes)
            estimates[rows] = batch[ops.degree_zero_nodes]
        return estimates.T

    def estimate_target_entries(self, residuals: np.ndarray,
                                entries: np.ndarray, *,
                                improved: bool = True) -> np.ndarray:
        """One scalar of :meth:`estimate_target_many` per batch row.

        ``entries[b]`` names the node whose estimate batch row ``b``
        wants (the pair query's source).  The tree sums are still
        folded for the whole batch in one CSR product, but the second
        product gathers only the ``B`` requested operator rows instead
        of spreading to all ``n`` — roughly halving the fold cost of a
        pair query versus materialising the full target vector.

        Bit-identity: CSR row slicing preserves each row's stored
        nonzero order, and scipy accumulates every output entry along
        that order, so ``estimate_target_entries(R, e)[b]`` equals
        ``estimate_target_many(R)[b, e[b]]`` bit-for-bit.
        """
        batch = self._as_batch(residuals)
        entries = np.asarray(entries, dtype=np.int64)
        if entries.shape != (batch.shape[1],):
            raise ConfigError(
                f"need one entry node per batch row, got {entries.shape} "
                f"for batch of {batch.shape[1]}")
        if entries.size and (entries.min() < 0
                             or entries.max() >= self.graph.num_nodes):
            raise ConfigError("entry node out of range")
        ops = self._operators
        rows = np.arange(entries.size)
        if ops.local_nodes is None:
            # relabeled bank: node v's operator row is row_of_node[v];
            # the row gather copies stored nonzeros verbatim, so each
            # scalar matches the identity layout bit-for-bit
            op_rows = (entries if ops.node_order is None
                       else ops.row_of_node[entries])
        else:
            # shard bank: operator rows are local positions; every
            # requested entry must be owned by this shard (the router
            # splits pair batches by source ownership)
            op_rows = np.searchsorted(ops.local_nodes, entries)
            in_range = op_rows < ops.local_nodes.size
            if entries.size and (not in_range.all() or not np.array_equal(
                    ops.local_nodes[op_rows[in_range]],
                    entries[in_range])):
                raise ConfigError(
                    "entry node(s) not owned by this shard")
        if not improved:
            sub = ops.gather_root[op_rows]
            estimates = np.asarray(sub @ batch)[rows, rows]
            return estimates / ops.num_forests
        tree_sums = ops.tree_sum @ (batch * self.graph.degrees[:, None])
        sub = ops.spread_target[op_rows]
        estimates = np.asarray(sub @ tree_sums)[rows, rows]
        estimates = estimates / ops.num_forests
        zero = self.graph.degrees[entries] == 0
        if zero.any():
            estimates[zero] = batch[entries[zero], rows[zero]]
        return estimates

    # ------------------------------------------------------------------
    def _combine(self, residual: np.ndarray, estimator) -> np.ndarray:
        if not self.forests:
            raise ConfigError(
                "this index is operator-only (attached from a bank); "
                "per-forest estimators need an index with stored forests "
                "— use estimate_source_many / estimate_target_many or "
                "load the full .npz index")
        estimates = np.zeros(self.graph.num_nodes)
        for forest in self.forests:
            estimates += estimator(forest, residual)
        return estimates / self.num_forests

    def _estimate_cv(self, residual: np.ndarray, kind: str) -> np.ndarray:
        """Control-variate bank mean over the stored forests.

        Rides the *basic* estimator (the improved one is the variate's
        conditional expectation, so their covariance vanishes) and
        regresses against the degree-mass variate, whose expectation
        is the degree vector on undirected graphs.
        """
        if not self.forests:
            raise ConfigError(
                "control_variate estimation needs stored forests; this "
                "index is operator-only (attached from a bank)")
        if self.graph.directed:
            raise ConfigError(
                "variance_mode='control_variate' is only unbiased on "
                "undirected graphs")
        degrees = self.graph.degrees
        acc = accumulate_cv_estimates(self.forests, residual, degrees,
                                      kind=kind)
        estimate, _beta = cv_combine(acc, degrees)
        return estimate

    def estimate_source(self, residual: np.ndarray, *,
                        improved: bool = True,
                        variance_mode: str | None = None) -> np.ndarray:
        """Average single-source forest estimate over the stored bank.

        ``variance_mode="control_variate"`` applies the regression
        adjustment of :func:`repro.forests.estimators.cv_combine`
        instead of the plain mean (``improved`` is then ignored).
        """
        if variance_mode == "control_variate":
            return self._estimate_cv(residual, "source")
        degrees = self.graph.degrees
        if improved:
            return self._combine(
                residual,
                lambda forest, r: source_estimate_improved(forest, r, degrees))
        return self._combine(residual, source_estimate_basic)

    def estimate_target(self, residual: np.ndarray, *,
                        improved: bool = True,
                        variance_mode: str | None = None) -> np.ndarray:
        """Average single-target forest estimate over the stored bank.

        ``variance_mode="control_variate"`` as in
        :meth:`estimate_source`.
        """
        if variance_mode == "control_variate":
            return self._estimate_cv(residual, "target")
        degrees = self.graph.degrees
        if improved:
            return self._combine(
                residual,
                lambda forest, r: target_estimate_improved(forest, r, degrees))
        return self._combine(residual, target_estimate_basic)
