r"""Batched α-random-walk simulation.

The classic Monte-Carlo estimator of ``π(s, t)`` runs many α-walks from
``s`` and counts the fraction ending at ``t``.  A naive per-walk Python
loop is exactly the bottleneck the repro notes warn about, so walks are
advanced *frontier-at-a-time*: one NumPy pass flips the stop coins for
every live walker, a second samples all their next neighbours through
the alias table.  The expected number of passes is the expected walk
length ``1/α`` but each pass retires a geometric fraction of walkers,
so total work is ``Θ(num_walks / α)`` array element-ops with only
``O(1/α)`` Python-level iterations.

Dangling nodes stop the walk in place (the library's absorbing
convention).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigError
from repro.graph.csr import Graph
from repro.rng import ensure_rng

__all__ = ["WalkBatch", "simulate_alpha_walks", "estimate_single_source_walks"]


@dataclass
class WalkBatch:
    """Endpoints of a batch of α-random walks.

    Attributes
    ----------
    starts:
        Start node of each walk.
    endpoints:
        Node where each walk stopped.
    total_steps:
        Walk steps summed over the batch (work counter; expectation is
        ``num_walks / α`` minus the α-share stopped at step 0).
    """

    starts: np.ndarray
    endpoints: np.ndarray
    total_steps: int

    @property
    def num_walks(self) -> int:
        """Number of walks in the batch."""
        return self.endpoints.size


def simulate_alpha_walks(graph: Graph, starts: np.ndarray, alpha: float,
                         rng: np.random.Generator | int | None = None,
                         max_length: int | None = None) -> WalkBatch:
    """Run one α-random walk from every entry of ``starts``.

    Parameters
    ----------
    starts:
        Array of start nodes; duplicates mean multiple walks per node.
    max_length:
        Hard cap on walk length (defaults to the 1-in-1e12 quantile of
        the geometric length distribution); walks still alive at the
        cap stop where they stand — the induced bias is below any
        practical estimation noise and keeps the routine total.
    """
    if not 0.0 < alpha < 1.0:
        raise ConfigError(f"alpha must lie strictly in (0, 1), got {alpha}")
    starts = np.asarray(starts, dtype=np.int64)
    if starts.size and (starts.min() < 0 or starts.max() >= graph.num_nodes):
        raise ConfigError("walk start out of range")
    if max_length is None:
        # P(geometric(alpha) > L) <= 1e-12
        max_length = int(np.ceil(-12.0 * np.log(10.0) / np.log1p(-alpha))) + 1
    generator = ensure_rng(rng)
    alias = graph.alias_table
    out_degrees = graph.out_degrees

    endpoints = starts.copy()
    live = np.arange(starts.size)
    current = starts.copy()
    total_steps = 0
    for _ in range(max_length):
        if live.size == 0:
            break
        coins = generator.random(live.size)
        stopping = (coins < alpha) | (out_degrees[current[live]] == 0)
        endpoints[live[stopping]] = current[live[stopping]]
        live = live[~stopping]
        if live.size == 0:
            break
        current[live] = alias.sample_neighbors(current[live], rng=generator)
        total_steps += live.size
    if live.size:
        endpoints[live] = current[live]
    return WalkBatch(starts=starts, endpoints=endpoints,
                     total_steps=total_steps)


def estimate_single_source_walks(graph: Graph, source: int, alpha: float,
                                 num_walks: int,
                                 rng: np.random.Generator | int | None = None,
                                 ) -> np.ndarray:
    """Pure Monte-Carlo single-source estimate (the classic baseline).

    ``π̂(source, v)`` = fraction of ``num_walks`` α-walks from
    ``source`` ending at ``v``.  Used on its own as a baseline and as
    the Monte-Carlo stage of FORA/SPEEDPPR.
    """
    if num_walks <= 0:
        raise ConfigError("num_walks must be positive")
    starts = np.full(num_walks, source, dtype=np.int64)
    batch = simulate_alpha_walks(graph, starts, alpha, rng=rng)
    return np.bincount(batch.endpoints,
                       minlength=graph.num_nodes) / float(num_walks)
