r"""Precomputed α-walk index (the FORA+ / SPEEDPPR+ optimisation).

§5.3: instead of simulating walks at query time, pre-run a fixed
number of α-walks from every node and store only their endpoints.
At query time, a node ``u`` left with residual ``r(u)`` consumes
``ω_u = ⌈r(u) · W⌉`` stored endpoints, each carrying weight
``r(u) / ω_u``.

Sizing follows the paper: FORA+ stores ``⌈d_u / ε⌉`` walks per node,
SPEEDPPR+ stores ``⌈d_u⌉`` — both expressed here through the
``walks_per_node`` array so either policy (or any other) plugs in.

The stored endpoints from one node are i.i.d., so consuming a prefix
is statistically equivalent to fresh simulation; when a query demands
more endpoints than stored, the estimate reuses the full stored set
with proportionally larger weights (slightly higher variance — the
paper's implementations do the same, sizing the index so this is
rare).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.exceptions import ConfigError
from repro.graph.csr import Graph
from repro.montecarlo.walks import simulate_alpha_walks
from repro.rng import ensure_rng

__all__ = ["WalkIndex"]


class WalkIndex:
    """Endpoint store for precomputed α-random walks.

    Build with :meth:`build`; query with :meth:`estimate_from_residual`.

    Attributes
    ----------
    offsets:
        CSR-style pointers into :attr:`endpoints`, one slice per node.
    endpoints:
        Flat array of stored walk endpoints.
    build_seconds, build_steps:
        Construction cost (wall clock and walk steps) for Fig. 5.
    """

    def __init__(self, graph: Graph, alpha: float, offsets: np.ndarray,
                 endpoints: np.ndarray, build_seconds: float,
                 build_steps: int):
        self.graph = graph
        self.alpha = alpha
        self.offsets = offsets
        self.endpoints = endpoints
        self.build_seconds = build_seconds
        self.build_steps = build_steps

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, graph: Graph, alpha: float,
              walks_per_node: np.ndarray,
              rng: np.random.Generator | int | None = None) -> "WalkIndex":
        """Simulate and store ``walks_per_node[u]`` α-walks from every ``u``."""
        counts = np.asarray(walks_per_node, dtype=np.int64)
        if counts.shape != (graph.num_nodes,):
            raise ConfigError("walks_per_node must have one entry per node")
        if np.any(counts < 0):
            raise ConfigError("walk counts must be non-negative")
        generator = ensure_rng(rng)
        started = time.perf_counter()
        starts = np.repeat(np.arange(graph.num_nodes), counts)
        batch = simulate_alpha_walks(graph, starts, alpha, rng=generator)
        offsets = np.zeros(graph.num_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        return cls(graph, alpha, offsets, batch.endpoints,
                   build_seconds=time.perf_counter() - started,
                   build_steps=batch.total_steps)

    @classmethod
    def build_fora_plus(cls, graph: Graph, alpha: float, epsilon: float,
                        rng: np.random.Generator | int | None = None,
                        cap: int | None = None) -> "WalkIndex":
        """FORA+ sizing: ``⌈d_u / ε⌉`` walks per node (optionally capped)."""
        if epsilon <= 0:
            raise ConfigError("epsilon must be positive")
        counts = np.ceil(graph.degrees / epsilon).astype(np.int64)
        if cap is not None:
            counts = np.minimum(counts, cap)
        return cls.build(graph, alpha, counts, rng=rng)

    @classmethod
    def build_speedppr_plus(cls, graph: Graph, alpha: float,
                            rng: np.random.Generator | int | None = None,
                            cap: int | None = None) -> "WalkIndex":
        """SPEEDPPR+ sizing: ``⌈d_u⌉`` walks per node."""
        counts = np.ceil(graph.degrees).astype(np.int64)
        counts = np.maximum(counts, 1)
        if cap is not None:
            counts = np.minimum(counts, cap)
        return cls.build(graph, alpha, counts, rng=rng)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | os.PathLike) -> None:
        """Serialise the index to an ``.npz`` file (graph not included)."""
        np.savez_compressed(
            path,
            alpha=np.float64(self.alpha),
            num_nodes=np.int64(self.graph.num_nodes),
            offsets=self.offsets,
            endpoints=self.endpoints,
            build_seconds=np.float64(self.build_seconds),
            build_steps=np.int64(self.build_steps),
        )

    @classmethod
    def load(cls, path: str | os.PathLike, graph: Graph) -> "WalkIndex":
        """Load an index saved with :meth:`save` for the same graph."""
        with np.load(path) as data:
            if int(data["num_nodes"]) != graph.num_nodes:
                raise ConfigError(
                    f"index was built for a graph with "
                    f"{int(data['num_nodes'])} nodes, got {graph.num_nodes}")
            return cls(graph, float(data["alpha"]),
                       data["offsets"].astype(np.int64),
                       data["endpoints"].astype(np.int64),
                       build_seconds=float(data["build_seconds"]),
                       build_steps=int(data["build_steps"]))

    # ------------------------------------------------------------------
    @property
    def num_walks(self) -> int:
        """Total stored walks."""
        return self.endpoints.size

    @property
    def size_bytes(self) -> int:
        """Index memory footprint (endpoints + offsets), for Fig. 6."""
        return self.endpoints.nbytes + self.offsets.nbytes

    def walks_of(self, node: int) -> np.ndarray:
        """Stored endpoints of the walks that started at ``node``."""
        return self.endpoints[self.offsets[node]:self.offsets[node + 1]]

    def estimate_from_residual(self, residual: np.ndarray,
                               scale: float) -> np.ndarray:
        """Monte-Carlo stage of an indexed query, fully vectorised.

        For every node ``u`` with positive residual, consume
        ``ω_u = ⌈r(u)·scale⌉`` stored endpoints (clamped to the stored
        count), each weighted ``r(u)/ω_u``, and histogram them.

        Parameters
        ----------
        residual:
            Residual vector from the push stage.
        scale:
            The sample-count multiplier ``W`` of Algorithm 3's analysis.
        """
        residual = np.asarray(residual, dtype=np.float64)
        if residual.shape != (self.graph.num_nodes,):
            raise ConfigError("residual must have one entry per node")
        if scale <= 0:
            raise ConfigError("scale must be positive")
        nodes = np.flatnonzero(residual > 0)
        if nodes.size == 0:
            return np.zeros(self.graph.num_nodes)
        stored = (self.offsets[nodes + 1] - self.offsets[nodes])
        wanted = np.ceil(residual[nodes] * scale).astype(np.int64)
        take = np.minimum(np.maximum(wanted, 1), np.maximum(stored, 1))
        usable = stored > 0
        nodes, take = nodes[usable], take[usable]
        if nodes.size == 0:
            return np.zeros(self.graph.num_nodes)
        # gather: for node i, slots offsets[i] .. offsets[i]+take_i-1
        gather_starts = self.offsets[nodes]
        total = int(take.sum())
        # classic vectorised ragged-range construction
        row_ends = np.cumsum(take)
        row_starts = row_ends - take
        positions = np.arange(total) - np.repeat(row_starts, take)
        slots = np.repeat(gather_starts, take) + positions
        weights = np.repeat(residual[nodes] / take, take)
        return np.bincount(self.endpoints[slots], weights=weights,
                           minlength=self.graph.num_nodes)
