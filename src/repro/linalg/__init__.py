"""Linear-algebra substrate: transition operator, β-Laplacian, exact
PPR solvers, power iteration and the spectrum/τ machinery of §4.2.
"""

from repro.linalg.transition import (
    transition_matrix,
    normalized_adjacency,
    dangling_nodes,
)
from repro.linalg.beta_laplacian import (
    beta_from_alpha,
    alpha_from_beta,
    beta_laplacian,
    beta_laplacian_dense,
    ppr_matrix_from_beta_laplacian,
    log_det_regularized_laplacian,
)
from repro.linalg.exact import (
    ExactSolver,
    exact_single_source,
    exact_single_target,
    exact_ppr_matrix,
)
from repro.linalg.power_iteration import (
    power_iteration_single_source,
    power_iteration_single_target,
)
from repro.linalg.chebyshev import (
    chebyshev_single_source,
    chebyshev_single_target,
    chebyshev_iterations_bound,
)
from repro.linalg.spectrum import (
    transition_eigenvalues,
    tau_from_eigenvalues,
    tau_exact,
    tau_hutchinson,
    SpectralDensity,
    estimate_spectral_density,
    tau_from_density,
)

__all__ = [
    "transition_matrix",
    "normalized_adjacency",
    "dangling_nodes",
    "beta_from_alpha",
    "alpha_from_beta",
    "beta_laplacian",
    "beta_laplacian_dense",
    "ppr_matrix_from_beta_laplacian",
    "log_det_regularized_laplacian",
    "ExactSolver",
    "exact_single_source",
    "exact_single_target",
    "exact_ppr_matrix",
    "power_iteration_single_source",
    "power_iteration_single_target",
    "chebyshev_single_source",
    "chebyshev_single_target",
    "chebyshev_iterations_bound",
    "transition_eigenvalues",
    "tau_from_eigenvalues",
    "tau_exact",
    "tau_hutchinson",
    "SpectralDensity",
    "estimate_spectral_density",
    "tau_from_density",
]
