r"""The β-Laplacian of Definition 2.1 and its determinant identities.

For decay factor α and ``β = α / (1 - α)`` the paper defines

.. math:: L_\beta = (\beta D)^{-1} (L + \beta D),

with ``L = D - A`` the graph Laplacian, and shows
``π(s, t) = (L_β^{-1})_{st}`` (Eq. 4).  The matrix-forest theorems
(Theorems 3.1–3.3) relate determinants and minors of ``L_β`` to sums of
rooted-spanning-forest weights; :mod:`repro.forests.enumeration`
verifies those identities by brute force on tiny graphs using the dense
constructors here.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ConfigError
from repro.graph.csr import Graph

__all__ = [
    "beta_from_alpha",
    "alpha_from_beta",
    "beta_laplacian",
    "beta_laplacian_dense",
    "ppr_matrix_from_beta_laplacian",
    "log_det_regularized_laplacian",
]


def beta_from_alpha(alpha: float) -> float:
    """``β = α / (1 - α)`` with domain checking (``0 < α < 1``)."""
    if not 0.0 < alpha < 1.0:
        raise ConfigError(f"alpha must lie strictly in (0, 1), got {alpha}")
    return alpha / (1.0 - alpha)


def alpha_from_beta(beta: float) -> float:
    """Inverse of :func:`beta_from_alpha` (``β > 0``)."""
    if beta <= 0.0:
        raise ConfigError(f"beta must be positive, got {beta}")
    return beta / (1.0 + beta)


def _check_positive_degrees(graph: Graph) -> None:
    if np.any(graph.degrees == 0):
        raise ConfigError(
            "the beta-Laplacian requires every node to have positive "
            "degree (L_beta scales by (beta*D)^-1); remove isolated nodes "
            "or use the absorbing solvers in repro.linalg.exact")


def beta_laplacian(graph: Graph, alpha: float) -> sp.csr_matrix:
    """Sparse ``L_β = (βD)^{-1}(L + βD)`` for a graph without isolated nodes."""
    _check_positive_degrees(graph)
    beta = beta_from_alpha(alpha)
    degrees = graph.degrees
    laplacian = sp.diags(degrees) - graph.to_scipy_adjacency()
    scale = sp.diags(1.0 / (beta * degrees))
    return (scale @ (laplacian + beta * sp.diags(degrees))).tocsr()


def beta_laplacian_dense(graph: Graph, alpha: float) -> np.ndarray:
    """Dense ``L_β``; intended for tiny graphs (tests, enumeration)."""
    return beta_laplacian(graph, alpha).toarray()


def ppr_matrix_from_beta_laplacian(graph: Graph, alpha: float) -> np.ndarray:
    """Full PPR matrix ``Π`` with ``Π[s, t] = π(s, t)`` via ``L_β^{-1}``.

    Dense inverse — O(n³); use only on small graphs.  Equivalent to
    ``α (I - (1-α) P)^{-1}`` (Eq. 2), which the tests confirm.
    """
    return np.linalg.inv(beta_laplacian_dense(graph, alpha))


def log_det_regularized_laplacian(graph: Graph, alpha: float) -> float:
    """``log det(L + βD)`` via sparse Cholesky-like LU.

    Theorem 4.3 expresses the forest-sampling normalising constant as
    ``det(L + βD)``; this helper makes it computable for statistical
    tests without overflowing (the determinant itself is astronomically
    large on any non-trivial graph).
    """
    _check_positive_degrees(graph)
    beta = beta_from_alpha(alpha)
    degrees = graph.degrees
    matrix = (sp.diags((1.0 + beta) * degrees)
              - graph.to_scipy_adjacency()).tocsc()
    lu = sp.linalg.splu(matrix, permc_spec="MMD_AT_PLUS_A",
                        options={"SymmetricMode": True})
    diag_u = lu.U.diagonal()
    if np.any(diag_u <= 0):
        # L + beta*D is positive definite; non-positive pivots can only
        # arise from permutation sign bookkeeping, take absolute values
        diag_u = np.abs(diag_u)
    return float(np.sum(np.log(diag_u)))
