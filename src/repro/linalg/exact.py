"""Exact PPR solvers via sparse LU factorisation.

These produce the ground truth every approximate algorithm is measured
against.  The linear system is ``(I - (1-α) P) x = α e`` (Eq. 1/2):

- a **single-target** vector (``π(v, t)`` for all ``v``) is the column
  ``t`` of ``α M^{-1}`` and solves ``M x = α e_t``;
- a **single-source** vector (``π(s, v)`` for all ``v``) is the row
  ``s`` and solves the transposed system ``M^T x = α e_s``.

:class:`ExactSolver` factorises ``M`` once (`scipy` SuperLU) and reuses
the factors across queries, which is how the paper computes its ground
truths "to an L1 error of 1e-9" — ours are exact to machine precision.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.exceptions import ConfigError
from repro.graph.csr import Graph
from repro.linalg.beta_laplacian import beta_from_alpha
from repro.linalg.transition import transition_matrix

__all__ = ["ExactSolver", "exact_single_source", "exact_single_target",
           "exact_ppr_matrix"]


class ExactSolver:
    """Reusable exact PPR solver for one ``(graph, alpha)`` pair.

    Parameters
    ----------
    graph:
        Any :class:`~repro.graph.csr.Graph`; dangling nodes are treated
        as absorbing (library-wide convention).
    alpha:
        Decay factor in ``(0, 1)``.

    Notes
    -----
    The factorisation costs roughly ``O(n^1.5)``–``O(n^2)`` on sparse
    graphs and each solve ``O(nnz(factors))``; both row and column
    queries share the same factorisation of ``M`` (SuperLU can solve
    the transposed system directly).
    """

    def __init__(self, graph: Graph, alpha: float):
        beta_from_alpha(alpha)  # validates alpha
        self.graph = graph
        self.alpha = float(alpha)
        n = graph.num_nodes
        matrix = (sp.identity(n, format="csr")
                  - (1.0 - alpha) * transition_matrix(graph)).tocsc()
        self._lu = spla.splu(matrix)

    def _unit(self, node: int) -> np.ndarray:
        if not 0 <= node < self.graph.num_nodes:
            raise ConfigError(
                f"node {node} out of range [0, {self.graph.num_nodes})")
        vector = np.zeros(self.graph.num_nodes)
        vector[node] = self.alpha
        return vector

    def single_source(self, source: int) -> np.ndarray:
        """``π(source, v)`` for every ``v`` (sums to 1)."""
        return self._lu.solve(self._unit(source), trans="T")

    def single_target(self, target: int) -> np.ndarray:
        """``π(v, target)`` for every ``v``."""
        return self._lu.solve(self._unit(target))

    def pairwise(self, source: int, target: int) -> float:
        """Single value ``π(source, target)``."""
        return float(self.single_source(source)[target])

    def resolvent_solve(self, vector: np.ndarray,
                        transpose: bool = False) -> np.ndarray:
        """Solve ``(I - (1-α)P) x = vector`` (or the transposed system).

        The raw resolvent without the α scaling — used by trace
        estimation (:func:`repro.linalg.spectrum.tau_hutchinson`) and
        available for applications that need ``(L_β)^{-1}``-style
        solves against the cached factorisation.
        """
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.graph.num_nodes,):
            raise ConfigError("vector must have one entry per node")
        return self._lu.solve(vector, trans="T" if transpose else "N")


def exact_single_source(graph: Graph, source: int, alpha: float) -> np.ndarray:
    """One-shot exact single-source PPR vector (see :class:`ExactSolver`)."""
    return ExactSolver(graph, alpha).single_source(source)


def exact_single_target(graph: Graph, target: int, alpha: float) -> np.ndarray:
    """One-shot exact single-target PPR vector (see :class:`ExactSolver`)."""
    return ExactSolver(graph, alpha).single_target(target)


def exact_ppr_matrix(graph: Graph, alpha: float) -> np.ndarray:
    """Dense ``Π`` with ``Π[s, t] = π(s, t)``; O(n³), tiny graphs only."""
    beta_from_alpha(alpha)
    n = graph.num_nodes
    dense = transition_matrix(graph).toarray()
    return alpha * np.linalg.inv(np.eye(n) - (1.0 - alpha) * dense)
