r"""Chebyshev-accelerated deterministic PPR solver.

The related work the paper benchmarks against includes
Chebyshev-polynomial acceleration of the power method ([19, 20] in the
paper's bibliography).  Power iteration applies the polynomial
``p_k(P) = α Σ_{j<k} ((1-α)P)^j`` whose error decays like ``(1-α)^k``;
the Chebyshev semi-iterative method instead applies the *minimax*
polynomial on the spectral interval ``[-(1-α), (1-α)]``, reaching the
same error in roughly ``√κ`` fewer iterations — noticeably fewer
mat-vecs at small α.

Implementation: solve ``(I - cP) x = α e`` with ``c = 1-α`` by the
classic three-term recurrence.  With eigenvalues of ``cP`` in
``[-c, c]``, the shifted-and-scaled Chebyshev iteration is

.. math::
   x_{k+1} = \omega_{k+1}\,(c P x_k + \alpha e - x_k + x_k) + \dots

written below in the standard residual form (Golub & Varga).  The
asymptotic convergence factor is ``c / (1 + \sqrt{1 - c^2})`` versus
``c`` for power iteration — e.g. at α = 0.01 it needs ~7× fewer
iterations for the same tolerance (tested).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigError, ConvergenceError
from repro.graph.csr import Graph
from repro.linalg.transition import transition_matrix

__all__ = ["chebyshev_single_source", "chebyshev_single_target",
           "chebyshev_iterations_bound"]


def chebyshev_iterations_bound(alpha: float, tolerance: float) -> int:
    """Iterations needed for error ``tolerance``: ``log tol / log ρ``
    with ``ρ = c / (1 + √(1-c²))`` the Chebyshev convergence factor."""
    if not 0.0 < alpha < 1.0:
        raise ConfigError(f"alpha must lie strictly in (0, 1), got {alpha}")
    if not 0.0 < tolerance < 1.0:
        raise ConfigError("tolerance must lie in (0, 1)")
    c = 1.0 - alpha
    rho = c / (1.0 + np.sqrt(1.0 - c * c))
    return int(np.ceil(np.log(tolerance) / np.log(rho))) + 1


def _chebyshev_solve(operator, unit_vector: np.ndarray, alpha: float,
                     tolerance: float, max_iterations: int) -> np.ndarray:
    """Chebyshev semi-iteration for ``(I - cP) x = α e`` (c = 1-α).

    Standard second-order Richardson form: with iteration matrix
    ``G = cP`` (spectrum in [-c, c]) solving ``x = G x + b``,

        x_{k+1} = ω_{k+1} (G x_k + b - x_{k-1}) + x_{k-1},
        ω_1 = 1,  ω_{k+1} = 1 / (1 - ω_k c² / 4).
    """
    b = alpha * unit_vector
    c = 1.0 - alpha
    x_prev = np.zeros_like(b)
    x = b.copy()  # one plain Richardson step seeds the recurrence
    omega = 1.0
    for iteration in range(max_iterations):
        omega = 1.0 / (1.0 - 0.25 * c * c * omega) if iteration else 2.0 / (
            2.0 - c * c)
        x_next = omega * (c * (operator @ x) + b - x_prev) + x_prev
        delta = np.abs(x_next - x).sum()
        x_prev, x = x, x_next
        if delta < tolerance * max(alpha, 1e-300):
            return x
    raise ConvergenceError(
        f"Chebyshev iteration did not converge in {max_iterations} rounds",
        iterations=max_iterations, residual=float(delta))


def _prepare(graph: Graph, node: int, alpha: float,
             tolerance: float) -> np.ndarray:
    if not 0 <= node < graph.num_nodes:
        raise ConfigError(f"node {node} out of range [0, {graph.num_nodes})")
    if not 0.0 < alpha < 1.0:
        raise ConfigError(f"alpha must lie strictly in (0, 1), got {alpha}")
    if tolerance <= 0:
        raise ConfigError("tolerance must be positive")
    unit = np.zeros(graph.num_nodes)
    unit[node] = 1.0
    return unit


def chebyshev_single_source(graph: Graph, source: int, alpha: float,
                            tolerance: float = 1e-9,
                            max_iterations: int = 1_000_000) -> np.ndarray:
    """``π(source, ·)`` via Chebyshev acceleration.

    Same answer as :func:`repro.linalg.power_iteration_single_source`,
    reached in ~``√(2/α)``-fold fewer mat-vecs at small α (tested
    against the iteration-count bound).
    """
    unit = _prepare(graph, source, alpha, tolerance)
    operator = transition_matrix(graph).T.tocsr()
    return _chebyshev_solve(operator, unit, alpha, tolerance,
                            max_iterations)


def chebyshev_single_target(graph: Graph, target: int, alpha: float,
                            tolerance: float = 1e-9,
                            max_iterations: int = 1_000_000) -> np.ndarray:
    """``π(·, target)`` via Chebyshev acceleration."""
    unit = _prepare(graph, target, alpha, tolerance)
    operator = transition_matrix(graph).tocsr()
    return _chebyshev_solve(operator, unit, alpha, tolerance,
                            max_iterations)
