"""Deterministic power iteration for PPR vectors.

Iterating ``p ← α e + (1-α) p P`` converges geometrically with rate
``(1-α)``; after ``k`` rounds the unpropagated residual mass is ``(1-α)^k``,
so reaching an L1 tolerance ``tol`` needs ``log(tol)/log(1-α)`` rounds
— the 1/α dependence the paper's Fig. 13 baseline ("Ground-truth-time")
exhibits.  Both directions share one implementation: the single-source
row vector iterates with ``P^T`` acting on columns, the single-target
column vector with ``P`` itself.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ConfigError, ConvergenceError
from repro.graph.csr import Graph
from repro.linalg.beta_laplacian import beta_from_alpha
from repro.linalg.transition import transition_matrix

__all__ = ["power_iteration_single_source", "power_iteration_single_target"]


def _iterate(operator: sp.csr_matrix, node: int, alpha: float,
             tolerance: float, max_iterations: int) -> tuple[np.ndarray, int]:
    n = operator.shape[0]
    if not 0 <= node < n:
        raise ConfigError(f"node {node} out of range [0, {n})")
    if tolerance <= 0:
        raise ConfigError("tolerance must be positive")
    # maintain the residual form: result accumulates alpha * residual,
    # the residual itself shrinks by the factor (1 - alpha) per round —
    # numerically identical to Jacobi iteration on (I - (1-a)P) x = a e
    result = np.zeros(n)
    residual = np.zeros(n)
    residual[node] = 1.0
    for iteration in range(max_iterations):
        result += alpha * residual
        residual = (1.0 - alpha) * (operator @ residual)
        if residual.sum() < tolerance:
            return result, iteration + 1
    raise ConvergenceError(
        f"power iteration did not reach tolerance {tolerance} in "
        f"{max_iterations} rounds", iterations=max_iterations,
        residual=float(residual.sum()))


def power_iteration_single_source(graph: Graph, source: int, alpha: float,
                                  tolerance: float = 1e-9,
                                  max_iterations: int = 100_000,
                                  ) -> np.ndarray:
    """``π(source, ·)`` by power iteration to an L1 tolerance.

    Raises :class:`~repro.exceptions.ConvergenceError` if the budget is
    exhausted (cannot happen for sane ``max_iterations`` since the
    residual mass decays exactly by ``1-α`` per round).
    """
    beta_from_alpha(alpha)
    transpose = transition_matrix(graph).T.tocsr()
    vector, _ = _iterate(transpose, source, alpha, tolerance, max_iterations)
    return vector


def power_iteration_single_target(graph: Graph, target: int, alpha: float,
                                  tolerance: float = 1e-9,
                                  max_iterations: int = 100_000,
                                  ) -> np.ndarray:
    """``π(·, target)`` by power iteration to an L1 tolerance."""
    beta_from_alpha(alpha)
    vector, _ = _iterate(transition_matrix(graph).tocsr(), target, alpha,
                         tolerance, max_iterations)
    return vector
