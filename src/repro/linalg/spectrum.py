r"""Spectrum of the transition matrix and the τ statistic (Lemma 4.4).

§4.2 of the paper bounds the cost of sampling one spanning forest by

.. math:: \tau = \sum_{i=1}^n \frac{1}{1 - (1-\alpha)\lambda_i},

with ``λ_i`` the eigenvalues of ``P = D^{-1}A``, and argues τ is
insensitive to α because real-graph spectra concentrate near 0
(their Fig. 2).  On undirected graphs ``P`` is similar to the symmetric
normalised adjacency ``N = D^{-1/2} A D^{-1/2}``, so its spectrum is
real and lives in ``[-1, 1]``; we compute it

- exactly, by dense ``eigvalsh`` of ``N`` (small graphs);
- approximately, by the kernel polynomial method (KPM): stochastic
  Chebyshev moment estimation with Jackson damping — the same flavour
  of spectral-density approximation as the paper's reference [18].

Both paths feed :func:`tau_from_eigenvalues` / :func:`tau_from_density`
which evaluate Lemma 4.4, and are cross-checked against the empirical
step count of the forest sampler in the test-suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigError
from repro.graph.csr import Graph
from repro.linalg.beta_laplacian import beta_from_alpha
from repro.linalg.transition import normalized_adjacency
from repro.rng import ensure_rng

__all__ = [
    "transition_eigenvalues",
    "tau_from_eigenvalues",
    "tau_exact",
    "tau_hutchinson",
    "SpectralDensity",
    "estimate_spectral_density",
    "tau_from_density",
]


def transition_eigenvalues(graph: Graph) -> np.ndarray:
    """Exact eigenvalues of ``P`` (ascending), via dense ``eigvalsh(N)``.

    O(n³) — intended for graphs up to a few thousand nodes.  Requires
    an undirected graph (the similarity to ``N`` needs symmetry).
    """
    if graph.directed:
        raise ConfigError("transition_eigenvalues requires an undirected graph")
    dense = normalized_adjacency(graph).toarray()
    return np.linalg.eigvalsh(dense)


def tau_from_eigenvalues(eigenvalues: np.ndarray, alpha: float) -> float:
    """Evaluate Lemma 4.4: ``τ = Σ 1 / (1 - (1-α) λ_i)``."""
    beta_from_alpha(alpha)
    eigenvalues = np.asarray(eigenvalues, dtype=np.float64)
    denominators = 1.0 - (1.0 - alpha) * eigenvalues
    if np.any(denominators <= 0):
        raise ConfigError("eigenvalues must lie in [-1, 1]")
    return float(np.sum(1.0 / denominators))


def tau_exact(graph: Graph, alpha: float) -> float:
    """τ by exact diagonalisation (small graphs)."""
    return tau_from_eigenvalues(transition_eigenvalues(graph), alpha)


def tau_hutchinson(graph: Graph, alpha: float, *, num_probes: int = 24,
                   rng: np.random.Generator | int | None = None) -> float:
    r"""τ by stochastic trace estimation on mid-size graphs.

    ``τ = tr[(I - (1-α)P)^{-1}]`` (the resolvent form of Lemma 4.4);
    Hutchinson's estimator evaluates it with ``num_probes`` Rademacher
    vectors, each requiring one sparse triangular solve against a
    single LU factorisation — no diagonalisation, so this scales past
    :func:`tau_exact`'s dense limit.  Works for directed graphs too
    (the trace identity does not need symmetry).
    """
    from repro.linalg.exact import ExactSolver  # local: avoid module cycle

    if num_probes < 1:
        raise ConfigError("num_probes must be positive")
    solver = ExactSolver(graph, alpha)
    generator = ensure_rng(rng)
    n = graph.num_nodes
    total = 0.0
    for _ in range(num_probes):
        probe = generator.choice((-1.0, 1.0), size=n)
        total += float(probe @ solver.resolvent_solve(probe))
    return total / num_probes


def _jackson_coefficients(num_moments: int) -> np.ndarray:
    """Jackson damping factors g_0..g_{K-1} suppressing Gibbs ringing."""
    big_k = num_moments
    k = np.arange(big_k)
    angle = np.pi / (big_k + 1)
    return ((big_k - k + 1) * np.cos(k * angle)
            + np.sin(k * angle) / np.tan(angle)) / (big_k + 1)


@dataclass
class SpectralDensity:
    """Chebyshev-moment representation of the eigenvalue density of ``P``.

    Attributes
    ----------
    moments:
        Damped Chebyshev moments ``g_k μ_k`` with ``μ_k = tr(T_k(N))/n``.
    num_nodes:
        ``n``, needed to turn densities into eigenvalue counts.
    """

    moments: np.ndarray
    num_nodes: int

    def _polynomial(self, points: np.ndarray) -> np.ndarray:
        """Evaluate ``p(λ) = μ̂_0 + 2 Σ_{k>=1} μ̂_k T_k(λ)``."""
        theta = np.arccos(np.clip(points, -1.0, 1.0))
        k = np.arange(1, self.moments.size)
        series = np.cos(np.outer(theta, k)) @ self.moments[1:]
        return self.moments[0] + 2.0 * series

    def pdf(self, points: np.ndarray) -> np.ndarray:
        """Estimated eigenvalue density at ``points`` in ``(-1, 1)``."""
        points = np.asarray(points, dtype=np.float64)
        weight = np.sqrt(np.maximum(1.0 - points**2, 1e-12))
        return np.maximum(self._polynomial(points) / (np.pi * weight), 0.0)

    def histogram(self, bins: int = 50) -> tuple[np.ndarray, np.ndarray]:
        """(bin_centres, estimated probability mass per bin) on [-1, 1].

        This reproduces Fig. 2(a–b): mass concentrated around 0.
        """
        edges = np.linspace(-1.0, 1.0, bins + 1)
        centres = 0.5 * (edges[:-1] + edges[1:])
        # Chebyshev–Gauss quadrature inside each bin
        mass = np.empty(bins)
        for i in range(bins):
            theta_hi = np.arccos(np.clip(edges[i], -1, 1))
            theta_lo = np.arccos(np.clip(edges[i + 1], -1, 1))
            nodes_theta = np.linspace(theta_lo, theta_hi, 16)
            lam = np.cos(nodes_theta)
            # ∫ f dλ = (1/π)∫ p(cosθ) dθ over the bin's θ-range
            mass[i] = np.trapezoid(self._polynomial(lam),
                                   nodes_theta) / np.pi
        mass = np.maximum(mass, 0.0)
        total = mass.sum()
        if total > 0:
            mass /= total
        return centres, mass

    def expectation(self, function) -> float:
        """``E_λ[function(λ)]`` by 512-point Chebyshev–Gauss quadrature."""
        count = 512
        theta = np.pi * (np.arange(count) + 0.5) / count
        lam = np.cos(theta)
        values = self._polynomial(lam) * function(lam)
        return float(values.mean())


def estimate_spectral_density(graph: Graph, *, num_moments: int = 80,
                              num_probes: int = 16,
                              rng: np.random.Generator | int | None = None,
                              ) -> SpectralDensity:
    """KPM estimate of the eigenvalue density of ``P``.

    Cost is ``num_moments * num_probes`` sparse mat-vecs.  Rademacher
    probes give an unbiased estimate of each moment
    ``μ_k = tr(T_k(N)) / n`` with variance O(1/(n·probes)).
    """
    if graph.directed:
        raise ConfigError("estimate_spectral_density requires an undirected graph")
    if num_moments < 2 or num_probes < 1:
        raise ConfigError("need num_moments >= 2 and num_probes >= 1")
    generator = ensure_rng(rng)
    matrix = normalized_adjacency(graph)
    n = graph.num_nodes
    moments = np.zeros(num_moments)
    for _ in range(num_probes):
        probe = generator.choice((-1.0, 1.0), size=n)
        previous = probe
        current = matrix @ probe
        moments[0] += probe @ probe
        moments[1] += probe @ current
        for k in range(2, num_moments):
            previous, current = current, 2.0 * (matrix @ current) - previous
            moments[k] += probe @ current
    moments /= num_probes * n
    return SpectralDensity(moments=_jackson_coefficients(num_moments) * moments,
                           num_nodes=n)


def tau_from_density(density: SpectralDensity, alpha: float) -> float:
    """τ (Lemma 4.4) from a KPM density: ``n · E_λ[1/(1-(1-α)λ)]``.

    Reproduces Fig. 2(c–d): τ grows only mildly as α decays
    exponentially.
    """
    beta_from_alpha(alpha)
    value = density.expectation(lambda lam: 1.0 / (1.0 - (1.0 - alpha) * lam))
    return density.num_nodes * value
