"""Transition-matrix helpers.

The paper works with ``P = D^-1 A``.  On graphs with dangling
(degree-0) nodes ``P`` has all-zero rows, which makes the α-walk
under-defined there; we adopt the standard convention that a dangling
node is *absorbing* (the walk stops in place), implemented by adding a
self-loop to its row.  Every solver, walk kernel and forest sampler in
the library follows this convention, so their answers agree exactly.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graph.csr import Graph

__all__ = ["dangling_nodes", "transition_matrix", "normalized_adjacency"]


def dangling_nodes(graph: Graph) -> np.ndarray:
    """Ids of nodes with zero (weighted) out-degree."""
    return np.flatnonzero(graph.degrees == 0)


def transition_matrix(graph: Graph, *, absorb_dangling: bool = True) -> sp.csr_matrix:
    """Row-stochastic ``P = D^-1 A``.

    Parameters
    ----------
    absorb_dangling:
        Give dangling nodes a unit self-loop so every row sums to 1
        (default; matches the library-wide walk convention).  With
        ``False`` the raw, possibly sub-stochastic matrix is returned.
    """
    matrix = graph.transition_matrix
    if not absorb_dangling:
        return matrix
    dangling = dangling_nodes(graph)
    if dangling.size == 0:
        return matrix
    loops = sp.coo_matrix(
        (np.ones(dangling.size), (dangling, dangling)),
        shape=matrix.shape)
    return (matrix + loops).tocsr()


def normalized_adjacency(graph: Graph) -> sp.csr_matrix:
    """Symmetric normalisation ``N = D^-1/2 A D^-1/2``.

    ``N`` is similar to ``P`` on undirected graphs (``N = D^1/2 P
    D^-1/2``), hence shares its spectrum while being symmetric — the
    spectrum code exploits this.  Dangling rows/columns stay zero,
    contributing eigenvalue-0 entries exactly as the absorbing
    convention would contribute eigenvalue-1 self-loops; the spectrum
    module corrects for that explicitly.
    """
    inv_sqrt = np.zeros(graph.num_nodes)
    positive = graph.degrees > 0
    inv_sqrt[positive] = 1.0 / np.sqrt(graph.degrees[positive])
    scaling = sp.diags(inv_sqrt)
    return (scaling @ graph.to_scipy_adjacency() @ scaling).tocsr()
