"""Sharded forest index: partitioning, partial results, routing.

- :mod:`repro.shard.partition` — deterministic node ↔ shard maps
  (hash / range strategies), exact CSR partition/merge round-trips;
- :mod:`repro.shard.partial` — the per-shard partial result the
  scatter-gather protocol ships between workers and the router;
- :mod:`repro.shard.router` — :class:`~repro.shard.router.ShardRouter`,
  the executor-shaped scatter-gather front over one
  :class:`~repro.service.executor.ProcessExecutor` per shard.

The router is exported lazily: it imports the service executor stack,
which itself imports the core batch solvers — and the batch solvers
import :mod:`repro.shard.partial` from here, so an eager import would
cycle.
"""

from repro.shard.partial import ShardPartial
from repro.shard.partition import (
    STRATEGIES,
    ShardMap,
    ShardSubgraph,
    merge_subgraphs,
    partition_graph,
)

__all__ = ["STRATEGIES", "ShardMap", "ShardSubgraph", "ShardPartial",
           "partition_graph", "merge_subgraphs", "ShardRouter",
           "bounded_topk_merge"]


def __getattr__(name: str):
    if name in ("ShardRouter", "bounded_topk_merge"):
        from repro.shard import router

        return getattr(router, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
