r"""Graph partitioning for the sharded forest index.

A :class:`ShardMap` assigns every node of a
:class:`~repro.graph.csr.Graph` to exactly one shard and gives each
node a dense *local id* inside its shard (its rank among the shard's
owned nodes in ascending global order).  Two strategies live behind
the one interface:

- ``hash`` — Knuth multiplicative hashing of the node id.  Spreads
  consecutive ids (and therefore most degree skew) evenly across
  shards; the default for load balance.
- ``range`` — contiguous blocks of the node-id space, first
  ``n % S`` shards one node larger (``array_split`` semantics).
  Keeps locality for id-ordered graphs and makes the ownership test a
  single comparison.

Both strategies are **pure functions of** ``(num_nodes, num_shards)``,
so serializing a map costs three scalars (:meth:`ShardMap.to_dict`)
and any two processes that build a map from the same triple agree on
every assignment — the property the scatter-gather router and the
per-shard executor workers rely on.

:func:`partition_graph` splits a CSR graph into per-shard
:class:`ShardSubgraph` row groups.  Neighbour ids stay **global** —
cut edges (arcs leaving the shard) are kept, not dropped — and each
row keeps its stored neighbour order, so :func:`merge_subgraphs`
reconstructs the original CSR arrays *exactly* (indptr, indices,
weights, byte for byte).  This is deliberately not
:meth:`~repro.graph.csr.Graph.subgraph`, which relabels nodes and
drops cut edges and therefore cannot round-trip.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigError
from repro.graph.csr import Graph

__all__ = ["STRATEGIES", "ShardMap", "ShardSubgraph", "partition_graph",
           "merge_subgraphs"]

#: Recognised partitioning strategies.
STRATEGIES = ("hash", "range")

#: Knuth's multiplicative-hash constant (2^32 / φ), mixing consecutive
#: node ids so hash shards see near-uniform node counts.
_HASH_MULTIPLIER = np.uint64(2654435761)
_HASH_MASK = np.uint64(2**32 - 1)


class ShardMap:
    """The node ↔ (shard, local id) mapping for one partitioning.

    Deterministic in ``(num_nodes, num_shards, strategy)`` — no RNG,
    no graph inspection — so the map never needs its arrays
    serialized: :meth:`to_dict` / :meth:`from_dict` carry only the
    defining triple.
    """

    def __init__(self, num_nodes: int, num_shards: int,
                 strategy: str = "hash"):
        num_nodes = int(num_nodes)
        num_shards = int(num_shards)
        if num_nodes < 1:
            raise ConfigError(f"num_nodes must be >= 1, got {num_nodes}")
        if num_shards < 1:
            raise ConfigError(f"num_shards must be >= 1, got {num_shards}")
        if strategy not in STRATEGIES:
            raise ConfigError(
                f"strategy must be one of {STRATEGIES}, got {strategy!r}")
        self.num_nodes = num_nodes
        self.num_shards = num_shards
        self.strategy = str(strategy)
        nodes = np.arange(num_nodes, dtype=np.int64)
        if self.strategy == "hash":
            hashed = (nodes.astype(np.uint64) * _HASH_MULTIPLIER) \
                & _HASH_MASK
            self.shard_of = (hashed % np.uint64(num_shards)).astype(np.int64)
        else:  # range: contiguous blocks, array_split sizing
            sizes = np.full(num_shards, num_nodes // num_shards,
                            dtype=np.int64)
            sizes[:num_nodes % num_shards] += 1
            self.shard_of = np.repeat(np.arange(num_shards, dtype=np.int64),
                                      sizes)
        # group nodes by shard; the stable sort of an ascending id
        # stream keeps each shard's owned list ascending, which is the
        # local-id order every restricted bank uses
        order = np.argsort(self.shard_of, kind="stable")
        counts = np.bincount(self.shard_of, minlength=num_shards)
        starts = np.concatenate(([0], np.cumsum(counts)))
        self._order = order
        self._starts = starts
        self.shard_sizes = counts
        self.local_of = np.empty(num_nodes, dtype=np.int64)
        self.local_of[order] = (nodes
                                - np.repeat(starts[:-1], counts))

    # ------------------------------------------------------------------
    def local_nodes(self, shard: int) -> np.ndarray:
        """Global ids owned by ``shard``, ascending (local id order)."""
        if not 0 <= shard < self.num_shards:
            raise ConfigError(
                f"shard {shard} out of range [0, {self.num_shards})")
        return self._order[self._starts[shard]:self._starts[shard + 1]]

    def locate(self, node: int) -> tuple[int, int]:
        """``(shard, local id)`` of one global node."""
        node = int(node)
        if not 0 <= node < self.num_nodes:
            raise ConfigError(
                f"node {node} out of range [0, {self.num_nodes})")
        return int(self.shard_of[node]), int(self.local_of[node])

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """The defining triple — all a peer needs to rebuild the map."""
        return {"strategy": self.strategy,
                "num_shards": self.num_shards,
                "num_nodes": self.num_nodes}

    @classmethod
    def from_dict(cls, payload: dict) -> "ShardMap":
        """Rebuild a map serialized by :meth:`to_dict`."""
        return cls(int(payload["num_nodes"]), int(payload["num_shards"]),
                   str(payload["strategy"]))

    def __eq__(self, other) -> bool:
        return (isinstance(other, ShardMap)
                and self.to_dict() == other.to_dict())

    def __repr__(self) -> str:
        return (f"ShardMap({self.num_nodes} nodes, "
                f"{self.num_shards} shard(s), {self.strategy!r})")


@dataclass(frozen=True)
class ShardSubgraph:
    """One shard's CSR row group.

    ``indptr`` is local (``len(nodes) + 1`` entries) but ``indices``
    stay **global** — cut edges are kept, so this is not a standalone
    :class:`~repro.graph.csr.Graph` (neighbour ids may exceed the
    local node count).  The invariants :func:`merge_subgraphs` needs:
    ``nodes`` ascending and owned by exactly one subgraph, and each
    row's neighbour order identical to the source graph's.
    """

    shard: int
    nodes: np.ndarray
    indptr: np.ndarray
    indices: np.ndarray
    weights: np.ndarray | None

    @property
    def num_nodes(self) -> int:
        return int(self.nodes.size)

    @property
    def num_edges(self) -> int:
        """Stored arcs (an undirected edge inside one shard counts
        twice, a cut edge once per owning endpoint)."""
        return int(self.indices.size)


def _row_positions(indptr: np.ndarray, rows: np.ndarray,
                   counts: np.ndarray) -> np.ndarray:
    """Flat CSR positions of ``rows``' adjacency slices, row order."""
    total = int(counts.sum())
    starts = np.asarray(indptr)[rows]
    offsets = np.concatenate(([0], np.cumsum(counts)))[:-1]
    return (np.arange(total, dtype=np.int64)
            - np.repeat(offsets, counts) + np.repeat(starts, counts))


def partition_graph(graph: Graph, shard_map: ShardMap) \
        -> list[ShardSubgraph]:
    """Split ``graph`` into one :class:`ShardSubgraph` per shard.

    Pure row gathering — no relabelling, no edge drops — so
    ``merge_subgraphs(partition_graph(g, m)) == g`` exactly.
    """
    if shard_map.num_nodes != graph.num_nodes:
        raise ConfigError(
            f"shard map covers {shard_map.num_nodes} nodes, graph has "
            f"{graph.num_nodes}")
    degrees = graph.out_degrees
    subgraphs = []
    for shard in range(shard_map.num_shards):
        rows = shard_map.local_nodes(shard)
        counts = degrees[rows]
        indptr = np.concatenate(
            ([0], np.cumsum(counts, dtype=np.int64)))
        positions = _row_positions(graph.indptr, rows, counts)
        weights = (None if graph.weights is None
                   else graph.weights[positions])
        subgraphs.append(ShardSubgraph(
            shard=shard, nodes=rows, indptr=indptr,
            indices=graph.indices[positions], weights=weights))
    return subgraphs


def merge_subgraphs(subgraphs: list[ShardSubgraph], *,
                    directed: bool = False) -> Graph:
    """Reassemble per-shard row groups into the original graph.

    Exact inverse of :func:`partition_graph`: every node must be owned
    by exactly one subgraph, and the result's CSR arrays equal the
    source graph's element for element (indptr, indices, weights, and
    per-row neighbour order included).
    """
    if not subgraphs:
        raise ConfigError("no subgraphs to merge")
    num_nodes = sum(sg.num_nodes for sg in subgraphs)
    owned = np.zeros(num_nodes, dtype=bool)
    counts = np.zeros(num_nodes, dtype=np.int64)
    for sg in subgraphs:
        nodes = np.asarray(sg.nodes, dtype=np.int64)
        if nodes.size and (nodes.min() < 0 or nodes.max() >= num_nodes):
            raise ConfigError(
                f"shard {sg.shard} owns node ids outside "
                f"[0, {num_nodes}) — subgraph set is not a partition")
        if owned[nodes].any():
            raise ConfigError(
                f"shard {sg.shard} owns nodes already claimed by "
                f"another shard")
        owned[nodes] = True
        counts[nodes] = np.diff(sg.indptr)
    if not owned.all():
        missing = int(np.flatnonzero(~owned)[0])
        raise ConfigError(
            f"node {missing} is owned by no subgraph — cannot merge")
    indptr = np.concatenate(([0], np.cumsum(counts, dtype=np.int64)))
    total = int(indptr[-1])
    indices = np.empty(total, dtype=subgraphs[0].indices.dtype)
    weighted = any(sg.weights is not None for sg in subgraphs)
    weights = np.empty(total, dtype=np.float64) if weighted else None
    for sg in subgraphs:
        row_counts = np.diff(sg.indptr)
        positions = _row_positions(indptr, np.asarray(sg.nodes), row_counts)
        indices[positions] = sg.indices
        if weighted:
            weights[positions] = (1.0 if sg.weights is None
                                  else sg.weights)
    return Graph(indptr, indices, weights, directed=directed,
                 validate=True)
