"""Per-shard partial query results for scatter-gather routing.

A shard worker folds only its **own rows** of the estimate vector
(the restricted bank, see
:meth:`~repro.montecarlo.forest_index.ForestIndex.restrict`), so it
cannot build a full :class:`~repro.core.result.PPRResult`.  It ships a
:class:`ShardPartial` instead: the local estimate rows plus the same
provenance fields a full result carries, so the router reassembles
``PPRResult`` objects by pure array placement — no floating-point
arithmetic happens at merge time, which is what keeps the merged
vector bit-identical to the unsharded fold.

This module imports only the standard library and numpy so the core
batch solvers and the forked executor workers can both use it without
pulling in the service layer (no import cycles).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ShardPartial"]


@dataclass
class ShardPartial:
    """The shard-local rows of one query's estimate vector.

    ``estimates[i]`` is the estimate for global node
    ``local_nodes[i]`` of the producing shard, where ``local_nodes``
    is the shard map's owned-node list (ascending global order) — the
    partial does not ship the id list itself; the router already
    knows it from the deterministic :class:`~repro.shard.partition.ShardMap`.

    ``kind`` / ``query_node`` / ``method`` / ``alpha`` / ``epsilon`` /
    ``stats`` mirror :class:`~repro.core.result.PPRResult` exactly, so
    a merged result copies them through unchanged.  Because every
    shard runs the identical deterministic push for the same request,
    these fields agree across shards; the router takes shard 0's.
    """

    estimates: np.ndarray
    kind: str
    query_node: int
    method: str
    alpha: float
    epsilon: float
    stats: dict = field(default_factory=dict)

    def __post_init__(self):
        self.estimates = np.asarray(self.estimates, dtype=np.float64)

    @property
    def num_rows(self) -> int:
        """Owned rows carried by this partial."""
        return int(self.estimates.size)

    def __repr__(self) -> str:
        return (f"ShardPartial({self.kind}={self.query_node}, "
                f"rows={self.num_rows}, method={self.method!r})")
