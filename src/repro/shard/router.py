r"""Scatter-gather query routing across per-shard worker pools.

:class:`ShardRouter` presents the exact surface of a
:class:`~repro.service.executor.ProcessExecutor` — ``run_batch`` /
``start`` / ``shutdown`` / ``warm`` / ``stats`` / ``in_flight`` /
``utilization`` — over one *pool per shard*, so the micro-batch
scheduler plugs it in as its ``executor`` without knowing anything
about shards.  Per kind:

- **source / target / multiseed** scatter the identical batch to every
  shard.  Each shard's workers run the full deterministic push over
  the full graph (pushes are cheap; the fold is the expensive stage)
  and fold only their own output rows, returning
  :class:`~repro.shard.partial.ShardPartial` rows; the router
  reassembles full vectors by pure array placement — no floating-point
  arithmetic at merge time, so the merged estimates are bit-identical
  to the unsharded fold.
- **pair** items are grouped by the shard that owns each *source*
  (``estimate_target_entries`` gathers the source row, which only that
  shard's restriction carries) and dispatched concurrently; the
  complete :class:`~repro.core.result.PairResult` objects come back
  and are reassembled in request order.  Entry values are
  column-independent in the fold, so the per-group computation is
  bit-identical to the one-batch computation.
- **topk** is affinity-routed whole to a single shard's pool, chosen
  deterministically from the first query node.  The top-k solver
  samples its own forest stream from the config seed and borrows no
  bank, so any pool answers it bit-identically — scattering it would
  *break* identity (per-shard partial top-k lists would come from
  per-shard forest streams).  :func:`bounded_topk_merge` is the
  tail-bounded merge for deployments that shard the candidate
  generation itself.

Because every shard runs the identical push for the same request, the
merged result adopts shard 0's per-query stats verbatim — exactly the
unsharded values, keeping serialized responses byte-identical across
shard counts.  The genuinely duplicated per-shard work is reported
separately through the ``stats`` out-parameter (``per_shard``) and the
per-shard fold-latency histogram
(``repro_service_shard_fold_seconds``).
"""

from __future__ import annotations

import math
import os
import threading
from collections import deque

import numpy as np

from repro.core.result import PPRResult
from repro.exceptions import ConfigError
from repro.service.executor import ExecutorError, ProcessExecutor

__all__ = ["ShardRouter", "StragglerDetector", "bounded_topk_merge"]

#: Test/ops hook: ``"<shard>:<seconds>[,<shard>:<seconds>...]"`` adds
#: synthetic fold time to the named shards *at recording time* (the
#: answers are untouched — only the observed latency moves), so a
#: deterministically slow shard can be forced without slowing tests.
SLOWDOWN_ENV = "REPRO_SHARD_SLOWDOWN"


def _env_slowdowns() -> dict[int, float]:
    spec = os.environ.get(SLOWDOWN_ENV, "").strip()
    if not spec:
        return {}
    slowdowns: dict[int, float] = {}
    for part in spec.split(","):
        shard, _, seconds = part.partition(":")
        try:
            slowdowns[int(shard)] = float(seconds)
        except ValueError:
            continue
    return slowdowns


class StragglerDetector:
    """Flag shard folds far above the rolling cross-shard fold time.

    Keeps one bounded window of recent fold times across *all* shards
    (the peers a straggler is slow relative to) and flags a fold whose
    z-score against that window exceeds ``z_threshold``.  A
    ``min_samples`` guard keeps the first folds — when the window
    cannot yet estimate a distribution — from being flagged, and a
    floor on the standard deviation keeps near-constant fold times
    (σ ≈ 0) from turning microsecond jitter into alerts.
    """

    def __init__(self, window: int = 128, min_samples: int = 8,
                 z_threshold: float = 3.0, min_sigma: float = 1e-4):
        if window < 2:
            raise ConfigError(f"window must be >= 2, got {window}")
        if min_samples < 2:
            raise ConfigError(
                f"min_samples must be >= 2, got {min_samples}")
        if z_threshold <= 0:
            raise ConfigError(
                f"z_threshold must be > 0, got {z_threshold}")
        self.window = int(window)
        self.min_samples = int(min_samples)
        self.z_threshold = float(z_threshold)
        self.min_sigma = float(min_sigma)
        self._samples: deque[float] = deque(maxlen=self.window)
        self._flagged: dict[int, int] = {}
        self._folds: dict[int, int] = {}
        self._last_z: dict[int, float] = {}
        self._lock = threading.Lock()

    def observe(self, shard: int, seconds: float) -> float | None:
        """Record one fold; returns its z-score when flagged else None.

        The z-score is computed against the window *before* the new
        sample joins it, so one slow fold cannot dilute the baseline
        it is judged against.
        """
        shard, seconds = int(shard), float(seconds)
        with self._lock:
            self._folds[shard] = self._folds.get(shard, 0) + 1
            z = None
            if len(self._samples) >= self.min_samples:
                mean = sum(self._samples) / len(self._samples)
                variance = (sum((value - mean) ** 2
                                for value in self._samples)
                            / len(self._samples))
                sigma = max(math.sqrt(variance), self.min_sigma)
                z = (seconds - mean) / sigma
                self._last_z[shard] = z
            self._samples.append(seconds)
            if z is not None and z >= self.z_threshold:
                self._flagged[shard] = self._flagged.get(shard, 0) + 1
                return z
            return None

    def stats(self) -> dict:
        """Window summary + per-shard fold/straggler counts."""
        with self._lock:
            samples = list(self._samples)
            flagged = dict(self._flagged)
            folds = dict(self._folds)
            last_z = dict(self._last_z)
        mean = sum(samples) / len(samples) if samples else 0.0
        sigma = (math.sqrt(sum((value - mean) ** 2
                               for value in samples) / len(samples))
                 if samples else 0.0)
        return {
            "window": len(samples),
            "mean_seconds": mean,
            "sigma_seconds": sigma,
            "z_threshold": self.z_threshold,
            "per_shard": [
                {"shard": shard,
                 "folds": folds.get(shard, 0),
                 "straggler_folds": flagged.get(shard, 0),
                 "last_z": round(last_z.get(shard, 0.0), 3)}
                for shard in sorted(folds)],
        }


def bounded_topk_merge(candidates, k: int, tail_bounds=None):
    """Merge per-shard descending ``(node, value)`` lists into a top-k.

    ``candidates[i]`` holds shard ``i``'s locally-largest entries in
    descending value order; ``tail_bounds[i]`` (optional) is an upper
    bound on every entry shard ``i`` did *not* report (defaults to 0.0,
    i.e. the list is complete).  Returns ``(top, exact)`` where ``top``
    is the merged top-``k`` as ``(node, value)`` pairs — ties broken by
    node id so the merge is deterministic — and ``exact`` is ``True``
    iff no shard's unreported tail could displace any selected entry:
    the k-th selected value must meet or exceed every tail bound.
    """
    if k < 1:
        raise ConfigError(f"k must be >= 1, got {k}")
    merged = [(float(value), int(node))
              for shard_list in candidates
              for node, value in shard_list]
    merged.sort(key=lambda pair: (-pair[0], pair[1]))
    top = [(node, value) for value, node in merged[:k]]
    if tail_bounds is None:
        tail_bounds = [0.0] * len(list(candidates))
    if len(top) < k:
        # fewer candidates than k: exact only if no shard held back
        exact = not any(float(bound) > 0.0 for bound in tail_bounds)
    else:
        cutoff = top[-1][1]
        exact = all(cutoff >= float(bound) for bound in tail_bounds)
    return top, exact


class ShardRouter:
    """One :class:`ProcessExecutor` per shard behind the executor API.

    Parameters
    ----------
    index_manager:
        A sharded :class:`~repro.service.index_manager.IndexManager`
        (``shards > 1``); the router runs ``index_manager.shards``
        pools, each pinned to its shard's restricted bank.
    workers_per_shard:
        Pool size per shard (total workers = shards × this).
    max_in_flight / task_timeout:
        Forwarded to each per-shard pool.
    metrics:
        Optional :class:`~repro.service.metrics.ServiceMetrics`; each
        dispatch records its per-shard fold wall time into the
        ``repro_service_shard_fold_seconds`` histogram so shard
        imbalance is visible from ``/metrics``.
    """

    def __init__(self, index_manager, *, workers_per_shard: int = 1,
                 max_in_flight: int | None = None,
                 task_timeout: float = 120.0, metrics=None):
        if index_manager.shards < 2:
            raise ConfigError(
                "ShardRouter needs a sharded IndexManager (shards >= 2); "
                "use ProcessExecutor directly for one shard")
        self.index_manager = index_manager
        self.num_shards = index_manager.shards
        self.workers_per_shard = int(workers_per_shard)
        self.num_workers = self.num_shards * self.workers_per_shard
        self.task_timeout = float(task_timeout)
        self.metrics = metrics
        self.straggler_detector = StragglerDetector()
        self._slowdown_spec: str | None = None
        self._slowdown_map: dict[int, float] = {}
        self.executors = [
            ProcessExecutor(index_manager, workers=workers_per_shard,
                            max_in_flight=max_in_flight,
                            task_timeout=task_timeout, shard=shard)
            for shard in range(self.num_shards)]

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "ShardRouter":
        for executor in self.executors:
            executor.start()
        return self

    def shutdown(self, timeout: float = 5.0) -> None:
        for executor in self.executors:
            executor.shutdown(timeout=timeout)

    def __enter__(self) -> "ShardRouter":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def warm(self, graph: str | None = None, alpha: float | None = None,
             timeout: float = 30.0, *, banks=None) -> int:
        """Warm every shard pool against its own restricted bank.

        Each pool's view is pinned to its shard, so the same
        ``(graph, alpha)`` spec warms shard-``k`` workers with the
        shard-``k`` bank and nothing else.  ``banks=`` (one entry per
        worker of each pool) passes through.  Returns the total
        completed warm-ups across all pools.
        """
        counts = [0] * self.num_shards

        def one(shard: int):
            counts[shard] = self.executors[shard].warm(
                graph, alpha, timeout, banks=banks)

        threads = [threading.Thread(target=one, args=(shard,), daemon=True)
                   for shard in range(self.num_shards)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return sum(counts)

    # -- scatter-gather ------------------------------------------------
    def _scatter(self, calls):
        """Run ``(shard, thunk)`` pairs concurrently; gather or raise.

        Returns ``{shard: value}``.  The first shard failure wins and
        is re-raised as :class:`ExecutorError` — the scheduler answers
        that by folding inline on the whole-space bank, so a single
        sick shard degrades throughput, never correctness.
        """
        if len(calls) == 1:
            shard, thunk = calls[0]
            return {shard: thunk()}
        results: dict[int, object] = {}
        errors: dict[int, BaseException] = {}
        lock = threading.Lock()

        def one(shard, thunk):
            try:
                value = thunk()
            except BaseException as error:  # noqa: BLE001 - re-raised
                with lock:
                    errors[shard] = error
            else:
                with lock:
                    results[shard] = value

        threads = [threading.Thread(target=one, args=call, daemon=True)
                   for call in calls]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            shard = min(errors)
            error = errors[shard]
            if isinstance(error, ExecutorError):
                raise ExecutorError(
                    f"shard {shard}: {error}") from error
            raise error
        return results

    def _slowdowns(self) -> dict[int, float]:
        """Current :data:`SLOWDOWN_ENV` map, re-read when it changes.

        Re-parsing on change (rather than once at construction) lets a
        test warm the straggler baseline with honest fold times and
        only then inject the slow shard — the realistic failure shape
        the z-score is designed for.
        """
        spec = os.environ.get(SLOWDOWN_ENV, "")
        if spec != self._slowdown_spec:
            self._slowdown_spec = spec
            self._slowdown_map = _env_slowdowns()
        return self._slowdown_map

    def _record_shard(self, per_shard: list[dict], stats: dict | None,
                      shard_stats: dict[int, dict]) -> None:
        """Fold per-shard extras into metrics and the stats out-param.

        Each shard's fold time also feeds the straggler detector; a
        flagged fold lands in ``stats["stragglers"]`` (the scheduler
        annotates the scatter-gather dispatch span with it) and in the
        ``straggler_folds`` metric.
        """
        stragglers: list[dict] = []
        for shard in sorted(shard_stats):
            extra = shard_stats[shard]
            fold = float(extra.get("fold_seconds", 0.0) or 0.0)
            fold += self._slowdowns().get(shard, 0.0)
            per_shard.append({"shard": shard, "fold_seconds": fold})
            z = self.straggler_detector.observe(shard, fold)
            if z is not None:
                stragglers.append({"shard": shard,
                                   "fold_seconds": fold,
                                   "z": round(z, 3)})
                if self.metrics is not None:
                    self.metrics.record_straggler(shard)
            if self.metrics is not None:
                self.metrics.record_shard_fold(shard, fold)
        if stats is not None:
            stats["per_shard"] = per_shard
            if stragglers:
                stats["stragglers"] = stragglers
            if per_shard:
                stats["fold_seconds"] = max(entry["fold_seconds"]
                                            for entry in per_shard)

    def run_batch(self, graph: str, kind: str, alpha: float,
                  epsilon: float, nodes, *,
                  pin: int | None = None,
                  timeout: float | None = None,
                  trace: bool = False,
                  stats: dict | None = None) -> list:
        """Scatter one batch across the shard pools and merge.

        Same contract as :meth:`ProcessExecutor.run_batch`; results are
        bit-identical to the unsharded executor for every kind.
        ``pin`` is ignored (each pool pins its own warm tasks).
        """
        items = list(nodes)
        if not items:
            return []
        if kind == "topk":
            return self._run_affinity(graph, kind, alpha, epsilon, items,
                                      timeout=timeout, trace=trace,
                                      stats=stats)
        if kind == "pair":
            return self._run_pair(graph, kind, alpha, epsilon, items,
                                  timeout=timeout, trace=trace,
                                  stats=stats)
        return self._run_scatter(graph, kind, alpha, epsilon, items,
                                 timeout=timeout, trace=trace,
                                 stats=stats)

    def _run_scatter(self, graph, kind, alpha, epsilon, items, *,
                     timeout, trace, stats):
        """Full-vector kinds: every shard folds its own rows."""
        shard_map = self.index_manager.shard_map(graph)
        shard_stats: dict[int, dict] = {
            shard: {} for shard in range(self.num_shards)}
        gathered = self._scatter([
            (shard, (lambda shard=shard: self.executors[shard].run_batch(
                graph, kind, alpha, epsilon, items, timeout=timeout,
                trace=trace and shard == 0, stats=shard_stats[shard])))
            for shard in range(self.num_shards)])
        num_nodes = shard_map.num_nodes
        results = []
        for position in range(len(items)):
            estimates = np.empty(num_nodes, dtype=np.float64)
            for shard in range(self.num_shards):
                partial = gathered[shard][position]
                estimates[shard_map.local_nodes(shard)] = partial.estimates
            head = gathered[0][position]
            # every shard ran the identical push, so shard 0's stats
            # ARE the unsharded per-query stats — adopting them keeps
            # serialized responses byte-identical across shard counts
            results.append(PPRResult(
                estimates=estimates, kind=head.kind,
                query_node=head.query_node, method=head.method,
                alpha=head.alpha, epsilon=head.epsilon,
                stats=dict(head.stats)))
        self._record_shard([], stats, shard_stats)
        if stats is not None:
            stats["spans"] = shard_stats[0].get("spans")
        return results

    def _run_pair(self, graph, kind, alpha, epsilon, items, *,
                  timeout, trace, stats):
        """Pair items go to the shard owning each source, in parallel."""
        shard_map = self.index_manager.shard_map(graph)
        groups: dict[int, list[int]] = {}
        for position, (source, _target) in enumerate(items):
            shard = int(shard_map.shard_of[int(source)])
            groups.setdefault(shard, []).append(position)
        shard_stats: dict[int, dict] = {shard: {} for shard in groups}
        gathered = self._scatter([
            (shard, (lambda shard=shard, positions=positions:
                     self.executors[shard].run_batch(
                         graph, kind, alpha, epsilon,
                         [items[position] for position in positions],
                         timeout=timeout,
                         trace=trace and shard == min(groups),
                         stats=shard_stats[shard])))
            for shard, positions in sorted(groups.items())])
        results: list = [None] * len(items)
        for shard, positions in groups.items():
            for offset, position in enumerate(positions):
                results[position] = gathered[shard][offset]
        self._record_shard([], stats, shard_stats)
        if stats is not None:
            stats["spans"] = shard_stats[min(groups)].get("spans")
        return results

    def _run_affinity(self, graph, kind, alpha, epsilon, items, *,
                      timeout, trace, stats):
        """Top-k: one pool answers the whole batch (it borrows no bank,
        so every pool's answer is identical — routing by the first
        query node just spreads load deterministically)."""
        shard_map = self.index_manager.shard_map(graph)
        shard = int(shard_map.shard_of[int(items[0][0])])
        shard_stats = {shard: {}}
        gathered = self._scatter([
            (shard, lambda: self.executors[shard].run_batch(
                graph, kind, alpha, epsilon, items, timeout=timeout,
                trace=trace, stats=shard_stats[shard]))])
        self._record_shard([], stats, shard_stats)
        if stats is not None:
            stats["spans"] = shard_stats[shard].get("spans")
        return gathered[shard]

    # -- observability -------------------------------------------------
    @property
    def in_flight(self) -> int:
        return sum(executor.in_flight for executor in self.executors)

    def utilization(self) -> list[float]:
        return [fraction for executor in self.executors
                for fraction in executor.utilization()]

    def straggler_stats(self) -> dict:
        """The straggler detector's window + per-shard flag counts."""
        return self.straggler_detector.stats()

    def stats(self) -> dict:
        """Executor-shaped snapshot plus a per-shard breakdown."""
        per_shard = [executor.stats() for executor in self.executors]
        return {
            "mode": "sharded",
            "shards": self.num_shards,
            "workers": self.num_workers,
            "alive": [flag for entry in per_shard
                      for flag in entry["alive"]],
            "in_flight": sum(entry["in_flight"] for entry in per_shard),
            "tasks_done": [count for entry in per_shard
                           for count in entry["tasks_done"]],
            "respawns": sum(entry["respawns"] for entry in per_shard),
            "utilization": self.utilization(),
            "per_shard": per_shard,
            "stragglers": self.straggler_stats(),
            "pid": os.getpid(),
        }
