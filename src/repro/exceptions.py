"""Exception hierarchy for the :mod:`repro` library.

All errors raised deliberately by the library derive from
:class:`ReproError`, so callers can catch one base class.  The
sub-classes mirror the three places things can go wrong: building or
validating a graph, configuring a query, and iterative numerics that
fail to converge.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class GraphError(ReproError):
    """Raised for malformed graph inputs.

    Examples: ragged CSR arrays, negative edge weights, node ids out of
    range, or an empty vertex set where at least one node is required.
    """


class ConfigError(ReproError):
    """Raised for invalid query configuration.

    Examples: a decay factor outside ``(0, 1)``, a non-positive relative
    error threshold, or a source/target node id that does not exist in
    the graph.
    """


class ConvergenceError(ReproError):
    """Raised when an iterative numerical routine exceeds its budget.

    Carries the iteration count and the last observed residual so the
    caller can decide whether to retry with a larger budget.
    """

    def __init__(self, message: str, iterations: int | None = None,
                 residual: float | None = None):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual
