"""Random number utilities shared by every stochastic routine.

Every sampler in the library takes an optional ``rng`` argument which
may be ``None`` (fresh entropy), an integer seed, or an existing
:class:`numpy.random.Generator`.  :func:`ensure_rng` normalises the
three forms.  :class:`BlockUniforms` amortises the cost of
``Generator.random`` for tight loops that consume one uniform at a
time (the faithful Algorithm 1 sampler) by drawing them in blocks.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_rng", "BlockUniforms", "spawn_children"]


def ensure_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed form.

    Parameters
    ----------
    rng:
        ``None`` for OS entropy, an ``int`` seed for reproducibility, or
        an existing generator which is returned unchanged.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"rng must be None, an int seed or a numpy Generator, got {type(rng)!r}")


def spawn_children(rng: np.random.Generator | int | None, count: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``count`` statistically independent children.

    Used when a query runs several independent sampling rounds whose
    results must not share streams (e.g. index snapshots).
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    parent = ensure_rng(rng)
    return [np.random.default_rng(seed) for seed in parent.integers(0, 2**63 - 1, size=count)]


class BlockUniforms:
    """Serve uniform(0,1) variates one at a time from pre-drawn blocks.

    ``Generator.random()`` has noticeable per-call overhead; drawing
    blocks of ~64k and slicing reduces it by an order of magnitude,
    which matters for the step-by-step reference sampler.
    """

    def __init__(self, rng: np.random.Generator | int | None = None,
                 block_size: int = 65536):
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self._rng = ensure_rng(rng)
        self._block_size = block_size
        self._block = self._rng.random(block_size)
        self._pos = 0

    def next(self) -> float:
        """Return the next uniform variate."""
        if self._pos >= self._block_size:
            self._block = self._rng.random(self._block_size)
            self._pos = 0
        value = self._block[self._pos]
        self._pos += 1
        return value

    def next_int(self, bound: int) -> int:
        """Return a uniform integer in ``[0, bound)`` using one variate."""
        return int(self.next() * bound)
