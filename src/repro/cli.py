"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
datasets
    Print the Table-1 stand-in registry with measured statistics.
query
    Run a single-source or single-target PPR query and print the
    top-k.  ``--top-k`` switches to the early-terminating top-k
    estimator, ``--seeds`` to a weighted multi-seed query, and
    ``--pair`` to a forest+push pairwise estimate — the same three
    query kinds the service exposes over HTTP.
pair
    Estimate one π(s, t) value.
cluster
    PPR sweep-cut local clustering around a seed node.
spectrum
    τ versus α for a dataset (the Fig-2 insensitivity check).
serve
    Long-lived PPR query service (micro-batching + index + cache),
    with opt-in request tracing / slow-query logging / profiling.
index
    Pre-build (``build``), edit (``mutate``, for ``--dynamic`` banks)
    or describe (``inspect``) an on-disk memmap-able forest-index
    bank.
trace
    Read a slow-query log: ``tail`` prints recent entries, one per
    line; ``summarize`` aggregates latency and span-stage statistics;
    ``export --format chrome`` converts the recorded span trees to
    Chrome trace-event JSON (loadable in Perfetto / chrome://tracing).
top
    Live terminal dashboard polling a running service's ``/statusz``:
    rolling request/error windows, SLO burn-rate state, per-tenant
    and per-shard tables.
obs
    Offline observability tooling: ``report`` renders a dumped
    ``/statusz`` JSON snapshot with the same layout ``top`` uses.
bench
    Run the calibrated CI benchmark gate (see ``repro.bench.ci_gate``).

All stochastic commands accept ``--seed`` and are fully reproducible.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.applications import local_cluster
from repro.bench.reporting import format_markdown_table
from repro.core import single_source, single_target
from repro.core.pairwise import pair_ppr
from repro.exceptions import ReproError
from repro.core.config import VARIANCE_MODES
from repro.graph.datasets import load_dataset, table1_statistics
from repro.push.kernels import DEFAULT_PUSH_BACKEND, PUSH_BACKENDS

__all__ = ["main", "build_parser", "render_statusz"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Personalized PageRank via random spanning forests "
                    "(SIGMOD 2022 reproduction)")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("datasets", help="list the stand-in datasets")

    query = commands.add_parser("query", help="run a PPR query")
    query.add_argument("kind", choices=["source", "target"])
    query.add_argument("dataset", help="dataset name (see `datasets`)")
    query.add_argument("node", type=int, nargs="?", default=None,
                       help="query node id (optional with --seeds)")
    query.add_argument("--method", default=None,
                       help="algorithm (default speedlv / backlv)")
    query.add_argument("--top-k", type=int, default=None, metavar="K",
                       help="early-terminating top-k estimation from "
                            "NODE (source kind only): stops sampling "
                            "forests once the top-K order is stable "
                            "under the estimator's variance bound")
    query.add_argument("--seeds", default=None, metavar="IDS",
                       help="comma-separated seed set — runs a "
                            "multi-seed (personalization vector) "
                            "query instead of a single-seed one")
    query.add_argument("--weights", default=None, metavar="WS",
                       help="comma-separated weights for --seeds "
                            "(default: uniform; normalized to sum 1)")
    query.add_argument("--pair", type=int, default=None, metavar="T",
                       help="pairwise estimate of ppr(NODE, T) via the "
                            "forest-estimate + push meet-in-the-middle")
    query.add_argument("--alpha", type=float, default=0.01)
    query.add_argument("--epsilon", type=float, default=0.5)
    query.add_argument("--top", type=int, default=10)
    query.add_argument("--scale", type=float, default=0.25,
                       help="dataset scale factor")
    query.add_argument("--budget-scale", type=float, default=0.05)
    query.add_argument("--seed", type=int, default=2022)
    query.add_argument("--workers", type=int, default=1,
                       help="processes for the forest Monte-Carlo stage "
                            "(0 = cpu count); estimates are identical "
                            "for every value at a fixed seed")
    query.add_argument("--push-backend", choices=list(PUSH_BACKENDS),
                       default=DEFAULT_PUSH_BACKEND,
                       help="sweep kernel for the deterministic push "
                            "stage; both backends print identical output "
                            "at a fixed seed")
    query.add_argument("--variance-mode", choices=list(VARIANCE_MODES),
                       default="improved",
                       help="forest-stage variance reduction: "
                            "control_variate regresses against the "
                            "degree-mass variate, stratified couples "
                            "sampling chunks through a Latin-hypercube "
                            "grid (and shrinks the forest budget by "
                            "its measured variance gain)")

    pair = commands.add_parser("pair", help="estimate one pi(s, t)")
    pair.add_argument("dataset")
    pair.add_argument("source", type=int)
    pair.add_argument("target", type=int)
    pair.add_argument("--alpha", type=float, default=0.01)
    pair.add_argument("--scale", type=float, default=0.25)
    pair.add_argument("--budget-scale", type=float, default=0.05)
    pair.add_argument("--seed", type=int, default=2022)

    cluster = commands.add_parser("cluster",
                                  help="PPR sweep-cut local clustering")
    cluster.add_argument("dataset")
    cluster.add_argument("seed_node", type=int)
    cluster.add_argument("--alpha", type=float, default=0.01)
    cluster.add_argument("--scale", type=float, default=0.25)
    cluster.add_argument("--budget-scale", type=float, default=0.05)
    cluster.add_argument("--max-size", type=int, default=None)
    cluster.add_argument("--seed", type=int, default=2022)

    spectrum = commands.add_parser("spectrum",
                                   help="tau vs alpha (Fig 2 check)")
    spectrum.add_argument("dataset")
    spectrum.add_argument("--alphas", type=float, nargs="+",
                          default=[0.1, 0.01, 0.001])
    spectrum.add_argument("--scale", type=float, default=0.25)
    spectrum.add_argument("--seed", type=int, default=2022)

    selfcheck = commands.add_parser(
        "selfcheck", help="quick statistical self-test of the install")
    selfcheck.add_argument("--seed", type=int, default=2022)
    selfcheck.add_argument("--workers", type=int, default=1,
                           help="worker processes for the sampling checks; "
                                "the printed report is identical for every "
                                "value at a fixed seed")
    selfcheck.add_argument("--push-backend", choices=list(PUSH_BACKENDS),
                           default=DEFAULT_PUSH_BACKEND,
                           help="sweep kernel used by the query checks")

    serve = commands.add_parser(
        "serve", help="run the long-lived PPR query service")
    serve.add_argument("--graph", default="youtube",
                       help="dataset to load and warm (see `datasets`)")
    serve.add_argument("--scale", type=float, default=0.25)
    serve.add_argument("--alpha", type=float, default=0.01)
    serve.add_argument("--epsilon", type=float, default=0.5)
    serve.add_argument("--budget-scale", type=float, default=0.05)
    serve.add_argument("--seed", type=int, default=2022)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8471,
                       help="bind port (0 = let the OS pick)")
    serve.add_argument("--max-batch", type=int, default=32,
                       help="most requests grouped into one solver call")
    serve.add_argument("--max-wait-ms", type=float, default=10.0,
                       help="deadline before a partial batch is flushed")
    serve.add_argument("--queue-capacity", type=int, default=256,
                       help="admission bound before 429 backpressure")
    serve.add_argument("--cache-entries", type=int, default=512,
                       help="result-cache capacity (0 disables)")
    serve.add_argument("--workers", type=int, default=1,
                       help="processes for index builds (0 = cpu count); "
                            "in process-executor mode also the size of "
                            "the query worker pool")
    serve.add_argument("--dynamic", action="store_true",
                       help="build repairable dynamic banks so POST "
                            "/mutate repairs forests incrementally "
                            "instead of rebuilding")
    serve.add_argument("--bank-dir", default=None, metavar="DIR",
                       help="preload generation 0 from a saved bank "
                            "(`repro index build` output) instead of "
                            "sampling at boot; the bank must match the "
                            "graph and --alpha")
    serve.add_argument("--executor", choices=["thread", "process"],
                       default="thread",
                       help="batch-fold execution: in-process threads "
                            "(default) or a forked worker pool attached "
                            "to shared-memory banks; answers are "
                            "byte-identical either way")
    serve.add_argument("--shards", type=int, default=1,
                       help="partition the node space across this many "
                            "worker pools of --workers processes each "
                            "and scatter-gather every query (needs "
                            "--executor process; answers stay "
                            "byte-identical to --shards 1)")
    serve.add_argument("--shard-strategy", choices=["hash", "range"],
                       default="hash",
                       help="node->shard assignment: multiplicative "
                            "hash (default, balances hubs) or "
                            "contiguous ranges (locality-friendly)")
    serve.add_argument("--push-backend", choices=list(PUSH_BACKENDS),
                       default=DEFAULT_PUSH_BACKEND)
    serve.add_argument("--trace-sample-rate", type=float, default=0.0,
                       help="fraction of requests recording a span tree "
                            "(head sampling; 0 disables tracing)")
    serve.add_argument("--trace-buffer", type=int, default=256,
                       help="finished traces kept in the in-memory ring")
    serve.add_argument("--slowlog", default=None, metavar="PATH",
                       help="JSON-lines slow-query log destination")
    serve.add_argument("--slowlog-threshold-ms", type=float,
                       default=250.0,
                       help="latency at/above which an ok request is "
                            "slow-logged (errors always are)")
    serve.add_argument("--slowlog-max-bytes", type=int, default=None,
                       metavar="N",
                       help="rotate the slow-log file once it would "
                            "exceed N bytes (previous generation kept "
                            "as PATH.1; default: never rotate)")
    serve.add_argument("--slo-availability-objective", type=float,
                       default=0.999, metavar="FRAC",
                       help="fraction of requests that must not fail "
                            "(availability SLO)")
    serve.add_argument("--slo-latency-objective", type=float,
                       default=0.99, metavar="FRAC",
                       help="fraction of requests that must finish "
                            "within --slo-latency-ms")
    serve.add_argument("--slo-latency-ms", type=float, default=250.0,
                       help="latency threshold of the latency SLO")
    serve.add_argument("--slo-fast-window-s", type=float, default=60.0,
                       help="fast burn-rate alerting window")
    serve.add_argument("--slo-slow-window-s", type=float, default=300.0,
                       help="slow burn-rate alerting window")
    serve.add_argument("--slo-burn-threshold", type=float, default=10.0,
                       help="burn rate both windows must exceed for an "
                            "alert to fire")
    serve.add_argument("--profile", default=None, metavar="PATH",
                       help="sample the whole process and write "
                            "collapsed stacks here on shutdown")
    serve.add_argument("--dry-run", action="store_true",
                       help="print the resolved service config and exit")

    index = commands.add_parser(
        "index", help="build or inspect an on-disk forest-index bank")
    index_actions = index.add_subparsers(dest="action", required=True)
    index_build = index_actions.add_parser(
        "build", help="sample a forest bank and save it memmap-able")
    index_build.add_argument("dataset", help="dataset name")
    index_build.add_argument("out_dir", help="output bank directory")
    index_build.add_argument("--scale", type=float, default=0.25)
    index_build.add_argument("--alpha", type=float, default=0.01)
    index_build.add_argument("--epsilon", type=float, default=0.5,
                             help="target relative error used to size "
                                  "the bank (see recommended_size)")
    index_build.add_argument("--num-forests", type=int, default=None,
                             help="explicit bank size (overrides "
                                  "--epsilon sizing)")
    index_build.add_argument("--seed", type=int, default=2022)
    index_build.add_argument("--dynamic", action="store_true",
                             help="store arrow records alongside the "
                                  "forests so `index mutate` can repair "
                                  "the bank incrementally")
    index_build.add_argument("--workers", type=int, default=1,
                             help="processes for the sampling stage "
                                  "(0 = cpu count)")
    index_build.add_argument("--shards", type=int, default=1,
                             help="also write per-shard restricted "
                                  "banks under OUT_DIR/shard-K plus a "
                                  "shards.json layout manifest")
    index_build.add_argument("--shard-strategy",
                             choices=["hash", "range"], default="hash",
                             help="node->shard assignment for --shards")
    index_build.add_argument("--variance-mode",
                             choices=list(VARIANCE_MODES),
                             default="improved",
                             help="sampling variance reduction; "
                                  "stratified couples the bank through "
                                  "a Latin-hypercube grid and shrinks "
                                  "the --epsilon sizing by its measured "
                                  "variance gain")
    index_build.add_argument("--node-order",
                             choices=["none", "degree", "bfs"],
                             default="none",
                             help="cache-aware bank row relabeling "
                                  "(format v3); float64 answers stay "
                                  "byte-identical to --node-order none")
    index_build.add_argument("--bank-dtype",
                             choices=["float64", "float32"],
                             default="float64",
                             help="operator storage dtype; float32 "
                                  "halves the dominant bank arrays at "
                                  "a bounded (documented) accuracy "
                                  "cost")
    index_mutate = index_actions.add_parser(
        "mutate", help="apply edge updates to a dynamic bank")
    index_mutate.add_argument("bank_dir",
                              help="dynamic bank directory "
                                   "(from `index build --dynamic`)")
    index_mutate.add_argument("--add", action="append", default=[],
                              metavar="U:V[:W]",
                              help="insert an edge (repeatable)")
    index_mutate.add_argument("--remove", action="append", default=[],
                              metavar="U:V",
                              help="delete an edge (repeatable)")
    index_mutate.add_argument("--set-weight", dest="set_weight",
                              action="append", default=[],
                              metavar="U:V:W",
                              help="reweight an existing edge "
                                   "(repeatable)")
    index_mutate.add_argument("--upsert", action="append", default=[],
                              metavar="U:V:W",
                              help="insert-or-reweight an edge "
                                   "(repeatable)")
    index_mutate.add_argument("--out", default=None, metavar="DIR",
                              help="write the repaired bank here "
                                   "(default: update in place)")
    index_mutate.add_argument("--seed", type=int, default=2022,
                              help="seed for the fresh arrow draws")

    index_inspect = index_actions.add_parser(
        "inspect", help="describe a saved bank without loading arrays")
    index_inspect.add_argument("bank_dir", help="bank directory to read")

    experiment = commands.add_parser(
        "experiment", help="run one paper experiment and print its table")
    experiment.add_argument("name", nargs="?", default=None,
                            help="driver name, e.g. fig3 or table1 "
                                 "(omit or use --list to enumerate)")
    experiment.add_argument("--list", action="store_true", dest="list_all",
                            help="list available experiments and exit")

    trace = commands.add_parser(
        "trace", help="read a slow-query log (tail / summarize)")
    trace_actions = trace.add_subparsers(dest="action", required=True)
    trace_tail = trace_actions.add_parser(
        "tail", help="print the last entries, one line each")
    trace_tail.add_argument("slowlog", help="JSON-lines slow-log file")
    trace_tail.add_argument("-n", "--lines", type=int, default=20,
                            help="how many trailing entries to print")
    trace_summarize = trace_actions.add_parser(
        "summarize", help="aggregate latency + span-stage statistics")
    trace_summarize.add_argument("slowlog",
                                 help="JSON-lines slow-log file")
    trace_export = trace_actions.add_parser(
        "export", help="convert recorded span trees to a viewer format")
    trace_export.add_argument("slowlog", help="JSON-lines slow-log file")
    trace_export.add_argument("--format", choices=["chrome"],
                              default="chrome",
                              help="output format (chrome = trace-event "
                                   "JSON for Perfetto/chrome://tracing)")
    trace_export.add_argument("--out", default=None, metavar="PATH",
                              help="write here (default: stdout)")

    top = commands.add_parser(
        "top", help="live terminal dashboard over a service's /statusz")
    top.add_argument("--url", default="http://127.0.0.1:8471",
                     help="service base url")
    top.add_argument("--interval", type=float, default=2.0,
                     help="poll period in seconds")
    top.add_argument("--once", action="store_true",
                     help="print one snapshot and exit (no screen "
                          "clearing; what the tests drive)")

    obs = commands.add_parser(
        "obs", help="offline observability tooling")
    obs_actions = obs.add_subparsers(dest="action", required=True)
    obs_report = obs_actions.add_parser(
        "report", help="render a dumped /statusz JSON snapshot")
    obs_report.add_argument("snapshot",
                            help="path to a saved /statusz response")

    bench = commands.add_parser(
        "bench", help="run the calibrated benchmark gate")
    bench.add_argument("--output", default=None,
                       help="write kernel timings JSON here")
    bench.add_argument("--baseline", default=None,
                       help="baseline JSON to compare against")
    bench.add_argument("--threshold", type=float, default=0.25,
                       help="allowed slowdown vs baseline")
    bench.add_argument("--workers", type=int, default=4)
    bench.add_argument("--profile", default=None, metavar="PATH",
                       help="write collapsed profiler stacks here")
    return parser


def _cmd_datasets(_: argparse.Namespace) -> int:
    print(format_markdown_table(table1_statistics(scale=0.25)))
    return 0


def _parse_int_list(text: str, label: str) -> list[int]:
    try:
        return [int(part) for part in text.split(",") if part.strip()]
    except ValueError as error:
        raise ReproError(f"bad {label} list {text!r}: {error}") from None


def _cmd_query(args: argparse.Namespace) -> int:
    modes = [name for name, on in [("--top-k", args.top_k is not None),
                                   ("--seeds", args.seeds is not None),
                                   ("--pair", args.pair is not None)]
             if on]
    if len(modes) > 1:
        raise ReproError(f"{' and '.join(modes)} are mutually exclusive")
    if args.node is None and not args.seeds:
        raise ReproError("node id is required unless --seeds is given")
    graph = load_dataset(args.dataset, scale=args.scale)
    common = dict(alpha=args.alpha, epsilon=args.epsilon,
                  budget_scale=args.budget_scale, seed=args.seed,
                  workers=args.workers, push_backend=args.push_backend,
                  variance_mode=args.variance_mode)

    if args.top_k is not None:
        if args.kind != "source":
            raise ReproError("--top-k only applies to source queries")
        from repro.core.topk import BatchTopKSolver
        with BatchTopKSolver(graph, **common) as solver:
            result = solver.query_topk(args.node, args.top_k)
        verdict = "converged" if result.converged else "budget-exhausted"
        print(f"top-{result.k} from node {result.node} "
              f"({verdict} after {result.num_forests} forests, "
              f"{result.stats['work_walk_steps']} walk steps)")
        for node, score in result.as_pairs():
            print(f"  {node:8d}  {score:.6f}")
        return 0

    if args.seeds is not None:
        from repro.core.batch import BatchMultiSeedSolver
        seeds = _parse_int_list(args.seeds, "--seeds")
        weights = (None if args.weights is None else
                   [float(part) for part in args.weights.split(",")
                    if part.strip()])
        with BatchMultiSeedSolver(graph, **common) as solver:
            result = solver.query_multiseed(seeds, weights)
        print(f"multiseed over {result.stats['num_seeds']} seeds "
              f"{list(result.stats['seeds'])} "
              f"weights {[round(w, 6) for w in result.stats['weights']]}")
        print(f"top {args.top}:")
        for node, score in result.top_k(args.top):
            print(f"  {node:8d}  {score:.6f}")
        return 0

    if args.pair is not None:
        from repro.core.batch import BatchPairSolver
        with BatchPairSolver(graph, **common) as solver:
            result = solver.query_pair(args.node, args.pair)
        print(f"pi({result.source}, {result.target}) ~= "
              f"{float(result):.8f}  [{result.method}]")
        return 0

    if args.kind == "source":
        result = single_source(graph, args.node,
                               method=args.method or "speedlv", **common)
    else:
        result = single_target(graph, args.node,
                               method=args.method or "backlv", **common)
    print(f"{result!r}")
    print(f"stats: { {k: v for k, v in result.stats.items()} }")
    print(f"top {args.top}:")
    for node, score in result.top_k(args.top):
        print(f"  {node:8d}  {score:.6f}")
    return 0


def _cmd_pair(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, scale=args.scale)
    value = pair_ppr(graph, args.source, args.target, alpha=args.alpha,
                     budget_scale=args.budget_scale, seed=args.seed)
    print(f"pi({args.source}, {args.target}) ~= {float(value):.8f}")
    print(f"stats: {value.stats}")
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, scale=args.scale)
    result = local_cluster(graph, args.seed_node, alpha=args.alpha,
                           budget_scale=args.budget_scale, seed=args.seed,
                           max_cluster_size=args.max_size)
    print(f"cluster around {args.seed_node}: size {result.size}, "
          f"conductance {result.conductance:.5f}")
    print("members:", " ".join(map(str, result.members.tolist())))
    return 0


def _cmd_spectrum(args: argparse.Namespace) -> int:
    from repro.forests import sample_forest
    from repro.linalg import estimate_spectral_density, tau_from_density

    graph = load_dataset(args.dataset, scale=args.scale)
    density = estimate_spectral_density(graph, rng=args.seed)
    rows = []
    for alpha in args.alphas:
        forest = sample_forest(graph, alpha, rng=args.seed)
        rows.append({
            "alpha": alpha,
            "tau_lemma44": round(tau_from_density(density, alpha), 1),
            "tau_sampled": forest.num_steps,
            "naive_n_over_alpha": round(graph.num_nodes / alpha, 1),
        })
    print(format_markdown_table(rows))
    return 0


def _cmd_selfcheck(args: argparse.Namespace) -> int:
    """Five fast end-to-end checks against exact ground truth.

    Exercises the theory-critical path (sampler law = PPR), the
    flagship query algorithm, the push invariant, the parallel
    engine's worker-count invariance, and the push backends'
    equivalence; exits non-zero on any failure so CI and users can
    gate on it.

    Every printed line — including the estimate digest — is identical
    for any ``--workers`` / ``--push-backend`` value at a fixed
    ``--seed``, so CI can diff two runs to verify both determinism
    contracts.
    """
    import hashlib

    from repro.core import l1_error, single_source
    from repro.graph.generators import erdos_renyi
    from repro.linalg import exact_ppr_matrix
    from repro.parallel import sample_forests_parallel
    from repro.push import balanced_forward_push, forward_push

    graph = erdos_renyi(12, 0.4, rng=args.seed)
    alpha = 0.2
    exact = exact_ppr_matrix(graph, alpha)
    failures = 0

    counts = np.zeros((12, 12))
    samples = 3000
    for forest in sample_forests_parallel(graph, alpha, samples,
                                          rng=args.seed, batch=True,
                                          workers=args.workers,
                                          chunk_size=256):
        counts[np.arange(12), forest.roots] += 1
    sampler_err = float(np.abs(counts / samples - exact).max())
    ok = sampler_err < 0.04
    failures += not ok
    print(f"[{'ok' if ok else 'FAIL'}] forest sampler law "
          f"(max dev {sampler_err:.4f} < 0.04)")

    result = single_source(graph, 0, method="speedlv", alpha=alpha,
                           seed=args.seed, workers=args.workers,
                           push_backend=args.push_backend)
    query_err = l1_error(result, exact[0])
    ok = query_err < 0.1
    failures += not ok
    print(f"[{'ok' if ok else 'FAIL'}] speedlv query "
          f"(L1 {query_err:.4f} < 0.1)")

    push = forward_push(graph, 0, alpha, 0.01,
                        backend=args.push_backend)
    invariant_err = float(np.abs(
        push.reserve + push.residual @ exact - exact[0]).max())
    ok = invariant_err < 1e-9
    failures += not ok
    print(f"[{'ok' if ok else 'FAIL'}] push invariant "
          f"(max dev {invariant_err:.2e} < 1e-9)")

    serial = single_source(graph, 0, method="speedlv", alpha=alpha,
                           seed=args.seed, workers=1,
                           push_backend=args.push_backend)
    ok = np.array_equal(serial.estimates, result.estimates)
    failures += not ok
    digest = hashlib.sha256(result.estimates.tobytes()).hexdigest()[:16]
    print(f"[{'ok' if ok else 'FAIL'}] parallel engine determinism "
          f"(serial-equal estimates; digest {digest})")

    vec = balanced_forward_push(graph, 0, alpha, 0.01,
                                backend="vectorized")
    sca = balanced_forward_push(graph, 0, alpha, 0.01, backend="scalar")
    backend_dev = float(max(np.abs(vec.reserve - sca.reserve).max(),
                            np.abs(vec.residual - sca.residual).max()))
    ok = backend_dev <= 1e-12 and vec.num_pushes == sca.num_pushes
    failures += not ok
    print(f"[{'ok' if ok else 'FAIL'}] push backend equivalence "
          f"(max dev {backend_dev:.2e} <= 1e-12; "
          f"pushes {vec.num_pushes} == {sca.num_pushes})")

    print("self-check " + ("passed" if failures == 0
                           else f"FAILED ({failures})"))
    return 0 if failures == 0 else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    """Boot the serving layer: warm the index, bind HTTP, run forever.

    ``--dry-run`` prints the resolved :class:`ServiceConfig` and exits
    without loading the graph — the golden-output tests pin this
    transcript so the flag plumbing stays byte-stable.
    """
    from repro.service import PPRService, ServiceConfig
    from repro.service.http import make_server, serve_forever

    config = ServiceConfig(
        graph=args.graph, scale=args.scale, alpha=args.alpha,
        epsilon=args.epsilon, budget_scale=args.budget_scale,
        seed=args.seed, workers=args.workers,
        push_backend=args.push_backend, max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms, queue_capacity=args.queue_capacity,
        cache_entries=args.cache_entries, host=args.host, port=args.port,
        executor=args.executor, dynamic=args.dynamic,
        bank_dir=args.bank_dir,
        shards=args.shards, shard_strategy=args.shard_strategy,
        trace_sample_rate=args.trace_sample_rate,
        trace_buffer=args.trace_buffer,
        slowlog_path=args.slowlog,
        slowlog_threshold_ms=args.slowlog_threshold_ms,
        slowlog_max_bytes=args.slowlog_max_bytes,
        slo_availability_objective=args.slo_availability_objective,
        slo_latency_objective=args.slo_latency_objective,
        slo_latency_ms=args.slo_latency_ms,
        slo_fast_window_s=args.slo_fast_window_s,
        slo_slow_window_s=args.slo_slow_window_s,
        slo_burn_threshold=args.slo_burn_threshold)
    print(config.describe())
    if args.dry_run:
        print("dry run: config ok, not starting the server")
        return 0

    profiler = None
    if args.profile:
        from repro.obs.profiler import SamplingProfiler

        profiler = SamplingProfiler()
        profiler.start()

    service = PPRService(config).start()
    server = make_server(service)
    banks = service.index_manager.stats()["banks"]
    for bank, entry in banks.items():
        print(f"warmed {bank}: {entry['num_forests']} forests, "
              f"{entry['size_bytes'] / 2**20:.1f} MiB in "
              f"{entry['build_seconds']:.2f}s")
    print(f"serving on http://{server.server_address[0]}:"
          f"{server.server_port}", flush=True)
    try:
        serve_forever(server)
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.server_close()
        service.stop()
        if profiler is not None:
            samples = profiler.stop().dump(args.profile)
            print(f"profile: {samples} samples -> {args.profile}")
    return 0


def _write_shard_banks(args: argparse.Namespace, graph, index) -> None:
    """Write per-shard restricted banks plus a ``shards.json`` layout.

    Each ``OUT_DIR/shard-K`` directory is a self-contained v2 bank
    whose fold operators cover only shard K's rows; ``shards.json``
    records the :class:`~repro.shard.partition.ShardMap` triple and
    per-shard node/edge counts so ``index inspect`` can print the
    layout without loading the graph.
    """
    import json
    import os

    from repro.parallel.shared_bank import bank_manifest
    from repro.shard.partition import ShardMap

    shard_map = ShardMap(graph.num_nodes, args.shards,
                         strategy=args.shard_strategy)
    degrees = graph.out_degrees
    entries = []
    print(f"  shards {shard_map.num_shards} ({shard_map.strategy})")
    for shard in range(shard_map.num_shards):
        local_nodes = shard_map.local_nodes(shard)
        restricted = index.restrict(
            local_nodes, shard_index=shard,
            shard_count=shard_map.num_shards,
            strategy=shard_map.strategy)
        shard_dir = os.path.join(args.out_dir, f"shard-{shard}")
        restricted.save_bank(shard_dir)
        shard_manifest = bank_manifest(shard_dir)
        shard_bytes = sum(spec["nbytes"]
                          for spec in shard_manifest["arrays"].values())
        nodes = int(local_nodes.size)
        edges = int(degrees[local_nodes].sum())
        entries.append({"shard": shard, "dir": f"shard-{shard}",
                        "nodes": nodes, "edges": edges})
        print(f"    shard-{shard}  {nodes} nodes  {edges} edges  "
              f"{shard_bytes} bank bytes")
    layout = {"version": 1, "shard_map": shard_map.to_dict(),
              "dataset": args.dataset, "scale": args.scale,
              "alpha": args.alpha, "shards": entries}
    with open(os.path.join(args.out_dir, "shards.json"), "w",
              encoding="utf-8") as handle:
        json.dump(layout, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _cmd_index(args: argparse.Namespace) -> int:
    """Build or inspect an on-disk forest-index bank.

    Every printed line is deterministic for fixed flags — no wall
    clock, no absolute paths — so the golden-output tests can pin the
    transcript byte-for-byte.
    """
    from repro.montecarlo.forest_index import ForestIndex
    from repro.parallel.shared_bank import bank_manifest

    if args.action == "build":
        from repro.exceptions import ConfigError

        if args.shards < 1:
            raise ConfigError(f"--shards must be >= 1, got {args.shards}")
        if args.shards > 1 and args.dynamic:
            raise ConfigError(
                "--shards does not combine with --dynamic banks; "
                "sharded dynamic repair lives in the service "
                "(`repro serve --shards N --dynamic`)")
        if args.dynamic and (args.node_order != "none"
                             or args.bank_dtype != "float64"):
            raise ConfigError(
                "--node-order/--bank-dtype do not combine with "
                "--dynamic banks: arrow records replay against raw "
                "node ids in full precision")
        graph = load_dataset(args.dataset, scale=args.scale)
        size = args.num_forests or ForestIndex.recommended_size(
            graph, args.epsilon, variance_mode=args.variance_mode)
        if args.dynamic:
            from repro.montecarlo.dynamic_index import DynamicForestIndex

            index = DynamicForestIndex.build(
                graph, args.alpha, size, rng=args.seed,
                variance_mode=args.variance_mode)
            index.save_dynamic_bank(args.out_dir)
        else:
            index = ForestIndex.build(graph, args.alpha, size,
                                      rng=args.seed,
                                      workers=args.workers,
                                      variance_mode=args.variance_mode)
            index.save_bank(args.out_dir, node_order=args.node_order,
                            bank_dtype=args.bank_dtype)
        manifest = bank_manifest(args.out_dir)
        payload = sum(spec["nbytes"]
                      for spec in manifest["arrays"].values())
        kind = "dynamic bank" if args.dynamic else "bank"
        print(f"built {kind}: {args.dataset} (scale {args.scale:g}, "
              f"{graph.num_nodes} nodes, {graph.num_edges} edges)")
        print(f"  alpha {args.alpha:g}  forests {index.num_forests}  "
              f"steps {index.build_steps}")
        print(f"  variance {args.variance_mode}  "
              f"layout {args.node_order}/{args.bank_dtype}")
        print(f"  arrays {len(manifest['arrays'])}  "
              f"payload {payload} bytes  "
              f"format v{manifest['version']}")
        if args.shards > 1:
            _write_shard_banks(args, graph, index)
        return 0

    if args.action == "mutate":
        from repro.exceptions import ConfigError
        from repro.graph.delta import GraphDelta, parse_edge_spec
        from repro.montecarlo.dynamic_index import DynamicForestIndex

        ops = (
            [parse_edge_spec(spec, op="add") for spec in args.add]
            + [parse_edge_spec(spec, op="remove")
               for spec in args.remove]
            + [parse_edge_spec(spec, op="set_weight")
               for spec in args.set_weight]
            + [parse_edge_spec(spec, op="upsert")
               for spec in args.upsert])
        if not ops:
            raise ConfigError(
                "index mutate needs at least one of "
                "--add/--remove/--set-weight/--upsert")
        delta = GraphDelta(ops)
        index = DynamicForestIndex.load_dynamic_bank(args.bank_dir)
        new_index, work = index.mutated(delta, rng=args.seed)
        new_index.save_dynamic_bank(args.out or args.bank_dir)
        graph = new_index.graph
        print(f"mutated bank: {len(delta)} ops, "
              f"{delta.touched_nodes().size} dirty nodes")
        print(f"  graph {graph.num_nodes} nodes, "
              f"{graph.num_edges} edges")
        print(f"  forests {new_index.num_forests}  "
              f"fresh steps {work.repair_fresh_steps}  "
              f"replayed {work.repair_replayed_steps}")
        return 0

    import json
    import os

    shards_path = os.path.join(args.bank_dir, "shards.json")
    if os.path.exists(shards_path):
        with open(shards_path, encoding="utf-8") as handle:
            layout = json.load(handle)
        shard_map = layout["shard_map"]
        print(f"sharded bank, {len(layout['shards'])} shards")
        print(f"  {'strategy':16s} {shard_map['strategy']}")
        print(f"  {'num_nodes':16s} {shard_map['num_nodes']}")
        for entry in layout["shards"]:
            shard_dir = os.path.join(args.bank_dir, entry["dir"])
            shard_manifest = bank_manifest(shard_dir)
            shard_bytes = sum(
                spec["nbytes"]
                for spec in shard_manifest["arrays"].values())
            print(f"    {entry['dir']:10s} {entry['nodes']:>8d} nodes "
                  f"{entry['edges']:>8d} edges "
                  f"{shard_bytes:>10d} bank bytes  "
                  f"format v{shard_manifest['version']}")
        return 0

    manifest = bank_manifest(args.bank_dir)
    meta = manifest.get("meta", {})
    payload = sum(spec["nbytes"] for spec in manifest["arrays"].values())
    print(f"array bank, format v{manifest['version']}")
    # build_seconds is wall clock — everything printed here is stable.
    # bank_dtype / node_order / variance_mode are v3 keys; pre-v3 banks
    # carry the implied defaults.
    for key in ("kind", "alpha", "num_nodes", "num_forests",
                "build_steps", "degree_checksum"):
        if key in meta:
            print(f"  {key:16s} {meta[key]}")
    print(f"  {'bank_dtype':16s} {meta.get('bank_dtype', 'float64')}")
    print(f"  {'node_order':16s} {meta.get('node_order', 'none')}")
    print(f"  {'variance_mode':16s} "
          f"{meta.get('variance_mode', 'improved')}")
    print(f"  {'arrays':16s} {len(manifest['arrays'])}")
    print(f"  {'payload_bytes':16s} {payload}")
    # per-operator rollup: the three CSR arrays of each fold operator,
    # so layout/dtype experiments can see where the bytes live
    for op in ("tree_sum", "spread_source", "scatter_root",
               "spread_target", "gather_root"):
        parts = [f"{op}_{suffix}" for suffix in
                 ("indptr", "indices", "data")]
        if all(part in manifest["arrays"] for part in parts):
            op_bytes = sum(manifest["arrays"][part]["nbytes"]
                           for part in parts)
            print(f"    operator {op:16s} {op_bytes:>12d} bytes")
    for name in sorted(manifest["arrays"]):
        spec = manifest["arrays"][name]
        shape = "x".join(map(str, spec["shape"])) or "scalar"
        print(f"    {name:24s} {spec['dtype']:10s} {shape:>12s}  "
              f"{spec['nbytes']} bytes")
    return 0


def _experiment_registry() -> dict:
    from repro.bench import experiments as drivers

    registry = {}
    for name in drivers.__all__:
        if name.startswith(("table", "fig", "ablation", "alpha")):
            registry[name] = getattr(drivers, name)
            short = name.split("_")[0]
            if name.startswith(("table", "fig")) and short not in registry:
                registry[short] = getattr(drivers, name)
    return registry


def _cmd_experiment(args: argparse.Namespace) -> int:
    registry = _experiment_registry()
    if args.list_all or args.name is None:
        for name in sorted(registry):
            print(f"{name:28s} {registry[name].__doc__.splitlines()[0]}")
        return 0
    key = args.name.lower()
    if key not in registry:
        print(f"error: unknown experiment {args.name!r}; try --list",
              file=sys.stderr)
        return 2
    rows = registry[key]()
    print(format_markdown_table(rows))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Read a slow-query log written by ``repro serve --slowlog``.

    ``tail`` prints the last entries one per line; ``summarize``
    aggregates latency and per-stage span time.  Both print only what
    the log contains — deterministic for a fixed file, so the golden
    tests can pin the ``summarize`` transcript.
    """
    from repro.obs.slowlog import (format_entry, read_slowlog,
                                   summarize_entries)

    try:
        entries = read_slowlog(args.slowlog)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.action == "tail":
        for entry in entries[-max(args.lines, 0):]:
            print(format_entry(entry))
        return 0

    if args.action == "export":
        import json

        from repro.obs.tracing import chrome_trace_events

        trees = [entry["trace"] for entry in entries
                 if entry.get("trace")]
        document = chrome_trace_events(trees)
        text = json.dumps(document, indent=2, sort_keys=True) + "\n"
        if args.out:
            with open(args.out, "w", encoding="utf-8") as sink:
                sink.write(text)
            print(f"exported {len(document['traceEvents'])} events "
                  f"from {len(trees)} traces -> {args.out}")
        else:
            print(text, end="")
        return 0

    summary = summarize_entries(entries)
    overview = summary["overview"]
    print(f"entries      {overview['entries']}")
    print(f"errors       {overview['errors']}")
    print(f"cached       {overview['cached']}")
    print(f"p50_seconds  {overview['p50_seconds']:.6f}")
    print(f"p95_seconds  {overview['p95_seconds']:.6f}")
    print(f"max_seconds  {overview['max_seconds']:.6f}")
    for name in sorted(overview["dispositions"]):
        print(f"  disposition {name:10s} {overview['dispositions'][name]}")
    if summary["stages"]:
        print(f"{'span':14s} {'count':>6s} {'total_ms':>10s} "
              f"{'mean_ms':>10s} {'max_ms':>10s}")
        for stage in summary["stages"]:
            print(f"{stage['span']:14s} {stage['count']:6d} "
                  f"{stage['total_ms']:10.3f} {stage['mean_ms']:10.3f} "
                  f"{stage['max_ms']:10.3f}")
    return 0


def render_statusz(payload: dict) -> str:
    """Deterministic text dashboard over one ``/statusz`` document.

    Shared by ``repro top`` (live polling) and ``repro obs report``
    (offline snapshot), and unit-tested on a fixed payload — so it
    never reads the clock or the terminal.
    """
    totals = payload.get("totals", {})
    lines = [
        f"repro service — {payload.get('status', '?')}   "
        f"graph {payload.get('graph', '?')}   "
        f"uptime {payload.get('uptime_seconds', 0.0):.0f}s",
        f"requests {totals.get('requests', 0)}   "
        f"rejected {totals.get('rejected', 0)}   "
        f"errors {totals.get('errors', 0)}   "
        f"queue {payload.get('queue_depth', 0)}   "
        f"straggler folds {totals.get('straggler_folds', 0)}",
    ]

    windows = payload.get("windows") or {}
    rows = []
    for label in sorted(windows, key=lambda item: float(item.rstrip("s"))):
        window = windows[label]
        if not window:
            continue
        counters = window.get("counters", {})
        latency = window.get("histograms", {}).get("latency", {})
        rows.append((label,
                     counters.get("requests", {}).get("total", 0.0),
                     counters.get("requests", {}).get("rate", 0.0),
                     counters.get("errors", {}).get("total", 0.0),
                     latency.get("p50", 0.0), latency.get("p99", 0.0)))
    if rows:
        lines.append("")
        lines.append(f"{'window':<8} {'requests':>9} {'rate/s':>8} "
                     f"{'errors':>7} {'p50_s':>9} {'p99_s':>9}")
        for label, total, rate, errors, p50, p99 in rows:
            lines.append(f"{label:<8} {total:>9.0f} {rate:>8.2f} "
                         f"{errors:>7.0f} {p50:>9.4f} {p99:>9.4f}")

    slo = payload.get("slo") or []
    if slo:
        lines.append("")
        lines.append(f"{'slo':<14} {'state':<8} {'fast_burn':>10} "
                     f"{'slow_burn':>10} {'objective':>10}")
        for report in slo:
            lines.append(f"{report.get('name', '?'):<14} "
                         f"{report.get('state', '?'):<8} "
                         f"{report.get('fast_burn', 0.0):>10.2f} "
                         f"{report.get('slow_burn', 0.0):>10.2f} "
                         f"{report.get('objective', 0.0):>10.4f}")

    tenants = payload.get("tenants") or []
    if tenants:
        lines.append("")
        lines.append(f"{'tenant':<16} {'requests':>9} {'rejected':>9} "
                     f"{'errors':>7} {'work':>10} {'p50_s':>9} "
                     f"{'p99_s':>9}")
        for row in tenants:
            lines.append(f"{row['tenant']:<16} {row['requests']:>9} "
                         f"{row['rejected']:>9} {row['errors']:>7} "
                         f"{row['work']:>10.0f} "
                         f"{row['p50_seconds']:>9.4f} "
                         f"{row['p99_seconds']:>9.4f}")

    shards = payload.get("shards") or []
    if shards:
        lines.append("")
        lines.append(f"{'shard':<7} {'folds':>7} {'stragglers':>11} "
                     f"{'fold_p50_s':>11} {'fold_p99_s':>11}")
        for row in shards:
            lines.append(f"{row['shard']:<7} {row['folds']:>7} "
                         f"{row['straggler_folds']:>11} "
                         f"{row['fold_p50_seconds']:>11.4f} "
                         f"{row['fold_p99_seconds']:>11.4f}")
    return "\n".join(lines)


def _cmd_top(args: argparse.Namespace) -> int:
    """Poll ``/statusz`` and render the dashboard (``--once`` = one
    shot, what tests and scripts use)."""
    import json
    import time
    import urllib.error
    import urllib.request

    def fetch() -> dict:
        with urllib.request.urlopen(f"{args.url}/statusz",
                                    timeout=10.0) as response:
            return json.loads(response.read())

    try:
        if args.once:
            print(render_statusz(fetch()))
            return 0
        while True:
            text = render_statusz(fetch())
            # clear + home, then the frame — a plain-ANSI poor man's top
            print(f"\x1b[2J\x1b[H{text}", flush=True)
            time.sleep(max(args.interval, 0.1))
    except KeyboardInterrupt:
        return 0
    except (urllib.error.URLError, OSError) as error:
        print(f"error: cannot reach {args.url}/statusz: {error}",
              file=sys.stderr)
        return 2


def _cmd_obs(args: argparse.Namespace) -> int:
    """Offline observability: render a saved ``/statusz`` snapshot."""
    import json

    try:
        with open(args.snapshot, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if not isinstance(payload, dict):
        print("error: snapshot must be a JSON object", file=sys.stderr)
        return 2
    print(render_statusz(payload))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run the calibrated CI gate, optionally under the profiler."""
    from repro.bench import ci_gate

    argv = ["--workers", str(args.workers),
            "--threshold", str(args.threshold)]
    if args.output:
        argv += ["--output", args.output]
    if args.baseline:
        argv += ["--baseline", args.baseline]

    profiler = None
    if args.profile:
        from repro.obs.profiler import SamplingProfiler

        profiler = SamplingProfiler()
        profiler.start()
    try:
        return ci_gate.main(argv)
    finally:
        if profiler is not None:
            samples = profiler.stop().dump(args.profile)
            print(f"profile: {samples} samples -> {args.profile}")


_COMMANDS = {
    "datasets": _cmd_datasets,
    "query": _cmd_query,
    "pair": _cmd_pair,
    "cluster": _cmd_cluster,
    "spectrum": _cmd_spectrum,
    "selfcheck": _cmd_selfcheck,
    "serve": _cmd_serve,
    "index": _cmd_index,
    "experiment": _cmd_experiment,
    "trace": _cmd_trace,
    "top": _cmd_top,
    "obs": _cmd_obs,
    "bench": _cmd_bench,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # the reader (e.g. `| head`) closed early; standard CLI etiquette
        return 0
