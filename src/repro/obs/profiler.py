r"""Opt-in sampling profiler dumping collapsed stacks for flamegraphs.

``--profile`` on ``repro serve`` and ``repro bench`` turns this on; it
is never active otherwise, so the serving hot path pays nothing.

The sampler is thread-based rather than signal-based: a daemon thread
wakes every ``interval`` seconds and snapshots every live thread's
Python stack via ``sys._current_frames()``.  Signals (``SIGPROF`` /
``setitimer``) only interrupt the main thread and interact badly with
the forked executor workers — a thread sampler sees the scheduler
flush threads, the HTTP connection threads, and the executor's
dispatcher/collector/monitor alike, which is exactly the set of
threads whose time split we want.  The cost is sampling bias at very
short intervals; at the default 5 ms the GIL-scheduling error is well
under the stage durations being profiled.

Output is the *collapsed stack* format flamegraph tooling consumes
directly (``flamegraph.pl collapsed.txt > flame.svg``, or paste into
speedscope): one line per unique stack, frames root-first joined by
``;``, then a space and the sample count.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import Counter

__all__ = ["SamplingProfiler"]


class SamplingProfiler:
    """Whole-process Python stack sampler (collapsed-stack output).

    Examples
    --------
    >>> profiler = SamplingProfiler(interval=0.001)
    >>> profiler.start()
    >>> sum(i * i for i in range(100_000)) > 0
    True
    >>> profiler.stop()
    >>> profiler.samples > 0
    True
    """

    def __init__(self, interval: float = 0.005):
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self.interval = float(interval)
        self._stacks: Counter[str] = Counter()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.samples = 0

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "SamplingProfiler":
        """Begin sampling on a daemon thread; idempotent."""
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, name="ppr-profiler", daemon=True)
            self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        """Stop sampling (collected stacks are kept)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- sampling ------------------------------------------------------
    def _loop(self) -> None:
        own_id = threading.get_ident()
        while not self._stop.wait(self.interval):
            frames = sys._current_frames()
            with self._lock:
                for thread_id, frame in frames.items():
                    if thread_id == own_id:
                        continue
                    self._stacks[_collapse(frame)] += 1
                    self.samples += 1

    # -- output --------------------------------------------------------
    def collapsed(self) -> list[str]:
        """``"frame;frame;frame count"`` lines, most sampled first."""
        with self._lock:
            ordered = sorted(self._stacks.items(),
                             key=lambda item: (-item[1], item[0]))
        return [f"{stack} {count}" for stack, count in ordered]

    def dump(self, path: str) -> int:
        """Write the collapsed stacks to ``path``; returns sample count."""
        lines = self.collapsed()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines))
            if lines:
                handle.write("\n")
        return self.samples


def _collapse(frame) -> str:
    """Root-first ``module.function`` frame chain for one stack."""
    parts: list[str] = []
    while frame is not None:
        code = frame.f_code
        module = frame.f_globals.get("__name__", "?")
        parts.append(f"{module}.{code.co_name}")
        frame = frame.f_back
    return ";".join(reversed(parts))
