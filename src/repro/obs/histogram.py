r"""Fixed-bucket latency histograms with lock-cheap per-thread shards.

The p50/p99 ring the service shipped with answers "how slow are
requests lately", but a ring cannot be merged across scrapes, cannot
express tail shape beyond two pinned quantiles, and every ``record``
contends one lock.  Prometheus-style fixed-bucket histograms fix all
three: bucket counts are additive (across threads, scrapes, and
restarts), any quantile is recoverable to bucket resolution, and the
fixed layout makes recording a bisect + increment.

Sharding: each recording thread owns a private shard (bucket counts +
sum) guarded by its own lock.  The shard lock is effectively
uncontended — only the owning thread records into it; the aggregating
reader takes each shard lock briefly at snapshot time — so the hot
path cost is one uncontended acquire, a bisect over ~20 bounds, and
two increments.  Shards are kept alive in the histogram's registry
after their thread dies, so counts from short-lived HTTP connection
threads are never lost.

Bucket bounds are log-spaced (1–2.5–5 per decade) from 10 µs to 10 s,
matching the dynamic range between a cache hit and a worst-case cold
fold.  All ``le`` labels are rendered exactly as Prometheus expects
(cumulative, closed upper bounds, trailing ``+Inf``).
"""

from __future__ import annotations

import threading
from bisect import bisect_left

__all__ = ["DEFAULT_BUCKETS", "STAGES", "LatencyHistogram",
           "HistogramRegistry", "exact_quantile", "format_le"]

#: Upper bucket bounds in seconds: 1–2.5–5 per decade, 10 µs … 10 s.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(
    round(mantissa * 10.0 ** exponent, 10)
    for exponent in range(-5, 1)
    for mantissa in (1.0, 2.5, 5.0)) + (10.0,)

#: The serving pipeline's instrumented stages, in pipeline order.
STAGES: tuple[str, ...] = ("admission", "cache_lookup", "batch_wait",
                           "dispatch", "fold", "merge", "serialize")


def format_le(bound: float) -> str:
    """Prometheus ``le`` label text for one finite bucket bound."""
    text = repr(float(bound))
    return text[:-2] if text.endswith(".0") else text


def exact_quantile(values, q: float) -> float:
    """Nearest-rank quantile of raw samples; ``0.0`` when empty.

    The one sample-based quantile used everywhere raw latencies are
    at hand (loadgen reports, slow-log summaries, per-tenant tables),
    so every surface agrees on what "p99" means.  Bucketed series use
    :meth:`LatencyHistogram.quantile` instead — same convention, one
    bucket of resolution.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    ordered = sorted(values)
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1,
                max(0, round(q * (len(ordered) - 1))))
    return float(ordered[index])


class _Shard:
    """One thread's private counts; the owner records, readers sum."""

    __slots__ = ("lock", "counts", "sum")

    def __init__(self, num_buckets: int):
        self.lock = threading.Lock()
        self.counts = [0] * num_buckets
        self.sum = 0.0


class LatencyHistogram:
    """Cumulative-bucket histogram over log-spaced latency buckets.

    ``observe`` is safe from any thread and cheap (per-thread shard,
    uncontended lock); ``snapshot`` folds every shard into one
    Prometheus-ready view.
    """

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BUCKETS):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("bounds must be a non-empty ascending tuple")
        self.bounds = tuple(float(bound) for bound in bounds)
        self._num_buckets = len(self.bounds) + 1  # trailing +Inf
        self._local = threading.local()
        self._shards: list[_Shard] = []
        self._shards_lock = threading.Lock()

    def _shard(self) -> _Shard:
        shard = getattr(self._local, "shard", None)
        if shard is None:
            shard = _Shard(self._num_buckets)
            with self._shards_lock:
                self._shards.append(shard)
            self._local.shard = shard
        return shard

    def observe(self, seconds: float) -> None:
        """Record one latency observation (thread-safe, lock-cheap)."""
        index = bisect_left(self.bounds, seconds)
        shard = self._shard()
        with shard.lock:
            shard.counts[index] += 1
            shard.sum += seconds

    # ------------------------------------------------------------------
    def _totals(self) -> tuple[list[int], float]:
        with self._shards_lock:
            shards = list(self._shards)
        counts = [0] * self._num_buckets
        total = 0.0
        for shard in shards:
            with shard.lock:
                for index, value in enumerate(shard.counts):
                    counts[index] += value
                total += shard.sum
        return counts, total

    @property
    def count(self) -> int:
        """Total observations across every shard."""
        return sum(self._totals()[0])

    def snapshot(self) -> dict:
        """``{"buckets": [(le, cumulative), ...], "sum": .., "count": ..}``

        Buckets are cumulative with a trailing ``("+Inf", count)``
        entry, exactly the Prometheus histogram exposition shape.
        """
        counts, total = self._totals()
        cumulative: list[tuple[str, int]] = []
        running = 0
        for bound, value in zip(self.bounds, counts):
            running += value
            cumulative.append((format_le(bound), running))
        cumulative.append(("+Inf", running + counts[-1]))
        return {"buckets": cumulative, "sum": total,
                "count": running + counts[-1]}

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the ``q``-quantile.

        Resolution is one bucket (≤ 2.5× by construction); overflow
        observations report the largest finite bound.  ``0.0`` when
        empty — the same convention the latency ring used.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        counts, _ = self._totals()
        total = sum(counts)
        if total == 0:
            return 0.0
        target = q * total
        running = 0
        for bound, value in zip(self.bounds, counts):
            running += value
            if running >= target:
                return bound
        return self.bounds[-1]


class HistogramRegistry:
    """Named per-stage histograms sharing one bucket layout.

    The registry is created with its full stage list up front, so the
    hot path (``observe``) is a plain dict lookup — no locking, no
    lazy creation — and the exposition order is stable.
    """

    def __init__(self, stages: tuple[str, ...] = STAGES,
                 bounds: tuple[float, ...] = DEFAULT_BUCKETS):
        self.bounds = tuple(bounds)
        self._histograms: dict[str, LatencyHistogram] = {
            stage: LatencyHistogram(self.bounds) for stage in stages}

    @property
    def stages(self) -> tuple[str, ...]:
        return tuple(self._histograms)

    def observe(self, stage: str, seconds: float) -> None:
        """Record one observation for ``stage`` (unknown stage raises)."""
        self._histograms[stage].observe(seconds)

    def histogram(self, stage: str) -> LatencyHistogram:
        return self._histograms[stage]

    def snapshot(self) -> dict[str, dict]:
        """``{stage: histogram snapshot}`` for every stage, in order."""
        return {stage: hist.snapshot()
                for stage, hist in self._histograms.items()}

    def quantile(self, stage: str, q: float) -> float:
        return self._histograms[stage].quantile(q)
