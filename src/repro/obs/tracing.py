r"""Request ids and a lightweight span tree for the serving stack.

The serving pipeline built in PRs 3–4 is multi-stage (HTTP → cache →
micro-batch scheduler → process executor → shared-bank fold) and
multi-process, which makes aggregate counters blind to the question
that matters under load: *where did this slow query spend its time*.
This module is the answer's substrate:

- :class:`Span` — one timed node in a per-request tree.  Timings use
  the monotonic clock; on Linux ``CLOCK_MONOTONIC`` is system-wide,
  so spans recorded in a forked worker are directly comparable to
  spans recorded in the parent and can be stitched into one tree
  (see :meth:`Span.add_raw` and the executor's reply protocol).
- :class:`Tracer` — head-sampling (the keep/drop decision is made
  once at request admission, deterministically from the request id
  and a seed) plus a bounded ring buffer of finished traces.
- :data:`NULL_SPAN` / :data:`NULL_TRACER` — the disabled path.  Every
  operation on them is a no-op returning the singleton, so
  instrumented code never branches on "is tracing on" and the
  disabled overhead is one attribute access per stage.

Nothing here imports beyond the stdlib, and nothing allocates unless
a trace is actually sampled — the two properties the serving hot path
needs.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
import zlib
from collections import deque

__all__ = [
    "Span",
    "NullSpan",
    "Tracer",
    "NullTracer",
    "NULL_SPAN",
    "NULL_TRACER",
    "chrome_trace_events",
    "new_request_id",
]

_request_counter = itertools.count(1)  # GIL-atomic next()


def new_request_id() -> str:
    """A process-unique request id (``<pid>-<seq>``, hex).

    Ids are generated, not random, so a fixed request sequence yields
    a fixed id sequence — which is what makes head-sampling decisions
    reproducible in tests (see :meth:`Tracer.should_sample`).
    """
    return f"{os.getpid():x}-{next(_request_counter):x}"


class Span:
    """One timed operation; children nest, raw subtrees graft.

    A span carries absolute monotonic ``start``/``end`` seconds plus a
    free-form ``attrs`` dict.  Children are either live :class:`Span`
    objects (same process) or *raw* span dicts shipped across a worker
    pipe (see :meth:`to_raw` / :meth:`add_raw`); :meth:`to_dict`
    renders both uniformly with offsets relative to the tree root.
    """

    __slots__ = ("name", "attrs", "start", "end", "children")

    #: real spans record; the :data:`NULL_SPAN` overrides this
    enabled = True

    def __init__(self, name: str, **attrs):
        self.name = name
        self.attrs = attrs
        self.start = time.monotonic()
        self.end: float | None = None
        self.children: list = []

    # -- construction --------------------------------------------------
    def child(self, name: str, **attrs) -> "Span":
        """Start a child span (caller must :meth:`finish` it)."""
        span = Span(name, **attrs)
        self.children.append(span)
        return span

    def add_raw(self, raw: dict | list | None) -> None:
        """Graft a finished raw span subtree (or a list of them).

        Raw spans are :meth:`to_raw` dicts produced in another process
        on the same machine; their monotonic timestamps share this
        process's clock, so they slot into the tree unchanged.
        """
        if raw is None:
            return
        if isinstance(raw, list):
            self.children.extend(raw)
        else:
            self.children.append(raw)

    def annotate(self, **attrs) -> "Span":
        """Attach key/value attributes; returns ``self`` for chaining."""
        self.attrs.update(attrs)
        return self

    def finish(self, error: str | None = None) -> "Span":
        """Close the span (idempotent — the first close wins)."""
        if self.end is None:
            self.end = time.monotonic()
            if error is not None:
                self.attrs["error"] = error
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.finish(error=None if exc is None else
                    f"{getattr(exc_type, '__name__', exc_type)}: {exc}")

    # -- inspection ----------------------------------------------------
    @property
    def duration(self) -> float:
        """Seconds from start to finish (to *now* while still open)."""
        return (self.end if self.end is not None
                else time.monotonic()) - self.start

    def to_raw(self) -> dict:
        """Absolute-clock dict form, safe to pickle across a pipe."""
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end if self.end is not None else time.monotonic(),
            "attrs": dict(self.attrs),
            "children": [child.to_raw() if isinstance(child, Span)
                         else child for child in self.children],
        }

    def to_dict(self, origin: float | None = None) -> dict:
        """JSON-friendly tree with millisecond offsets from ``origin``
        (defaults to this span's own start — i.e. call it on the root)."""
        return _raw_to_dict(self.to_raw(),
                            self.start if origin is None else origin)


def _raw_to_dict(raw: dict, origin: float) -> dict:
    end = raw["end"] if raw["end"] is not None else raw["start"]
    node = {
        "name": raw["name"],
        "offset_ms": round((raw["start"] - origin) * 1e3, 3),
        "duration_ms": round((end - raw["start"]) * 1e3, 3),
    }
    if raw.get("attrs"):
        node["attrs"] = raw["attrs"]
    if raw.get("children"):
        node["children"] = [_raw_to_dict(child, origin)
                            for child in raw["children"]]
    return node


class NullSpan:
    """The disabled span: every operation is a free no-op.

    A single module-level instance (:data:`NULL_SPAN`) is threaded
    through un-sampled requests so the instrumented code path is
    identical whether tracing is on or off — no branches, no
    allocation, near-zero overhead.
    """

    __slots__ = ()
    enabled = False
    name = ""
    attrs: dict = {}
    start = 0.0
    end = 0.0
    children: list = []

    def child(self, name: str, **attrs) -> "NullSpan":
        return self

    def add_raw(self, raw) -> None:
        pass

    def annotate(self, **attrs) -> "NullSpan":
        return self

    def finish(self, error: str | None = None) -> "NullSpan":
        return self

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass

    @property
    def duration(self) -> float:
        return 0.0

    def to_raw(self) -> dict:
        return {}

    def to_dict(self, origin: float | None = None) -> dict:
        return {}


NULL_SPAN = NullSpan()


class Tracer:
    """Head-sampled request tracing with a bounded finished-trace ring.

    Parameters
    ----------
    sample_rate:
        Fraction of requests traced, decided once per request id
        (head sampling).  ``0.0`` disables request tracing entirely —
        :meth:`trace` returns :data:`NULL_SPAN` without hashing.
    capacity:
        Finished traces retained (newest-first eviction).
    seed:
        Salts the id hash so sampling is deterministic per
        ``(seed, request_id)`` — rerunning a request stream under the
        same seed samples the same subset.
    """

    def __init__(self, sample_rate: float = 0.0, capacity: int = 256,
                 seed: int = 0):
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be in [0, 1], got {sample_rate}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sample_rate = float(sample_rate)
        self.seed = int(seed)
        self._ring: deque[dict] = deque(maxlen=int(capacity))
        self._lock = threading.Lock()
        self._started = 0
        self._dropped = 0

    @property
    def enabled(self) -> bool:
        """Whether any request can be head-sampled."""
        return self.sample_rate > 0.0

    def should_sample(self, request_id: str) -> bool:
        """The deterministic head-sampling decision for one request."""
        if self.sample_rate <= 0.0:
            return False
        if self.sample_rate >= 1.0:
            return True
        digest = zlib.crc32(f"{self.seed}:{request_id}".encode())
        return digest / 2**32 < self.sample_rate

    def trace(self, name: str, request_id: str | None = None, *,
              force: bool = False):
        """Root span for one request, or :data:`NULL_SPAN` if unsampled.

        ``force=True`` bypasses sampling (debug requests, index
        lifecycle events) — the span is recorded even at rate 0.
        """
        if not force and not self.should_sample(request_id or ""):
            with self._lock:
                self._dropped += 1
            return NULL_SPAN
        with self._lock:
            self._started += 1
        span = Span(name)
        if request_id is not None:
            span.attrs["request_id"] = request_id
        return span

    def finish(self, span) -> dict | None:
        """Close ``span`` and retain its rendered tree in the ring."""
        if not span.enabled:
            return None
        span.finish()
        tree = span.to_dict()
        with self._lock:
            self._ring.append(tree)
        return tree

    def traces(self) -> list[dict]:
        """Finished traces, oldest first (bounded by ``capacity``)."""
        with self._lock:
            return list(self._ring)

    def stats(self) -> dict:
        """Counters for ``/healthz``: sampled, dropped, buffered."""
        with self._lock:
            return {"sampled": self._started, "dropped": self._dropped,
                    "buffered": len(self._ring),
                    "sample_rate": self.sample_rate}


def _chrome_walk(node: dict, events: list, pid: int, tid: int) -> None:
    event = {
        "name": str(node.get("name", "span")),
        "ph": "X",
        "cat": "repro",
        "pid": pid,
        "tid": tid,
        "ts": round(float(node.get("offset_ms", 0.0)) * 1000.0, 3),
        "dur": round(float(node.get("duration_ms", 0.0)) * 1000.0, 3),
    }
    attrs = node.get("attrs")
    if attrs:
        event["args"] = attrs
    events.append(event)
    for child in node.get("children", ()):
        _chrome_walk(child, events, pid, tid)


def chrome_trace_events(trees: list[dict], *,
                        process_name: str = "repro-serve") -> dict:
    """Convert rendered span trees to the Chrome trace-event format.

    Input is the :meth:`Span.to_dict` shape — the tracer ring and
    slow-log ``trace`` fields both hold it.  Each tree becomes one
    virtual thread of complete ("X") events with microsecond
    timestamps, so ``chrome://tracing`` and Perfetto render the
    request set as stacked flame charts.  The return value is the
    JSON-object flavour of the format (``{"traceEvents": [...]}``),
    which both viewers accept.
    """
    events: list[dict] = [{
        "name": "process_name", "ph": "M", "pid": 1,
        "args": {"name": process_name},
    }]
    for tid, tree in enumerate(trees, start=1):
        if not isinstance(tree, dict) or not tree:
            continue
        attrs = tree.get("attrs") or {}
        label = str(tree.get("name", "trace"))
        request_id = attrs.get("request_id")
        if request_id:
            label = f"{label} {request_id}"
        events.append({
            "name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
            "args": {"name": label},
        })
        _chrome_walk(tree, events, 1, tid)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


class NullTracer:
    """Tracer stand-in for components built without one."""

    __slots__ = ()
    enabled = False
    sample_rate = 0.0

    def should_sample(self, request_id: str) -> bool:
        return False

    def trace(self, name: str, request_id: str | None = None, *,
              force: bool = False) -> NullSpan:
        return NULL_SPAN

    def finish(self, span) -> None:
        return None

    def traces(self) -> list:
        return []

    def stats(self) -> dict:
        return {"sampled": 0, "dropped": 0, "buffered": 0,
                "sample_rate": 0.0}


NULL_TRACER = NullTracer()
