r"""Dependency-free observability layer for the PPR serving stack.

Four pillars, threaded through every service component (see
docs/OBSERVABILITY.md for the full model):

- :mod:`repro.obs.tracing` — request ids, head-sampled per-request
  span trees with cross-process stitching over the executor's worker
  pipes, and a bounded ring of finished traces;
- :mod:`repro.obs.histogram` — fixed log-spaced-bucket latency
  histograms with lock-cheap per-thread shards, one per pipeline
  stage, rendered in Prometheus histogram text format;
- :mod:`repro.obs.slowlog` — a structured JSON-lines slow-query log
  (threshold-admitted, errors always sampled) carrying the span tree
  and work counters of each offending request;
- :mod:`repro.obs.profiler` — an opt-in sampling profiler dumping
  collapsed stacks for flamegraphs (``--profile``);
- :mod:`repro.obs.timeseries` — fixed-interval ring-buffer series
  (counters, gauges, histogram windows) answering "over the last N
  seconds" questions with bounded memory and no background threads;
- :mod:`repro.obs.slo` — declarative availability/latency SLOs
  evaluated with multi-window burn-rate alerting on top of the
  rolling series.

Everything is stdlib-only and safe to import before the executor
forks.  The disabled path (sample rate 0, no slow-log file, profiler
off) is engineered to be near-zero overhead: unsampled requests
thread a no-op :data:`~repro.obs.tracing.NULL_SPAN` through the exact
same code path as sampled ones.
"""

from repro.obs.histogram import (
    DEFAULT_BUCKETS,
    STAGES,
    HistogramRegistry,
    LatencyHistogram,
    exact_quantile,
)
from repro.obs.profiler import SamplingProfiler
from repro.obs.slo import SLOEngine, SLOSpec, SLOTracker, default_specs
from repro.obs.slowlog import SlowLog, read_slowlog, summarize_entries
from repro.obs.timeseries import (
    RollingCounter,
    RollingGauge,
    RollingHistogram,
    TimeSeriesStore,
)
from repro.obs.tracing import (
    NULL_SPAN,
    NULL_TRACER,
    NullSpan,
    NullTracer,
    Span,
    Tracer,
    chrome_trace_events,
    new_request_id,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "HistogramRegistry",
    "LatencyHistogram",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullSpan",
    "NullTracer",
    "RollingCounter",
    "RollingGauge",
    "RollingHistogram",
    "SamplingProfiler",
    "SLOEngine",
    "SLOSpec",
    "SLOTracker",
    "SlowLog",
    "STAGES",
    "Span",
    "TimeSeriesStore",
    "Tracer",
    "chrome_trace_events",
    "default_specs",
    "exact_quantile",
    "new_request_id",
    "read_slowlog",
    "summarize_entries",
]
