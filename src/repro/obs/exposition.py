"""Strict Prometheus text-exposition (v0.0.4) checker.

``/metrics`` is consumed by scrapers that silently drop malformed
families, so "it renders" is not enough — this module validates the
whole document structurally and is run against the *live* endpoint in
the CI smoke job (``loadgen --check-exposition``) and in the test
suite:

- every sample line belongs to a family announced by ``# HELP`` and
  ``# TYPE`` lines (in that order, exactly once per family);
- metric and label names match the Prometheus grammar, label values
  are well-formed quoted strings, sample values parse as floats;
- no duplicate ``(sample name, label set)`` pair;
- histogram families carry ``_bucket``/``_sum``/``_count`` samples
  only, every bucket series is cumulative (non-decreasing in ``le``),
  ends at ``le="+Inf"``, and the ``+Inf`` count equals ``_count``;
- counters are finite and non-negative.

:func:`check_exposition` returns a list of human-readable failure
strings (empty = the document is clean), mirroring the shape of the
loadgen smoke checkers so CI can print every violation at once.
"""

from __future__ import annotations

import math
import re

__all__ = ["check_exposition", "parse_exposition"]

_METRIC_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_LABEL_NAME = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*")
_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")

#: Sample-name suffixes each family type may legally emit.
_SUFFIXES = {
    "histogram": ("_bucket", "_sum", "_count"),
    "summary": ("_sum", "_count", ""),
}


def _parse_labels(text: str, failures: list[str],
                  line_no: int) -> dict[str, str] | None:
    """``{name="value",...}`` body → dict (None on a syntax error)."""
    labels: dict[str, str] = {}
    rest = text
    while rest:
        match = re.match(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"',
                         rest)
        if not match:
            failures.append(f"line {line_no}: bad label syntax near "
                            f"{rest[:30]!r}")
            return None
        name, value = match.group(1), match.group(2)
        if name in labels:
            failures.append(f"line {line_no}: duplicate label {name!r}")
            return None
        labels[name] = value
        rest = rest[match.end():]
        if rest.startswith(","):
            rest = rest[1:]
        elif rest:
            failures.append(f"line {line_no}: expected ',' between "
                            f"labels, got {rest[:10]!r}")
            return None
    return labels


def parse_exposition(text: str):
    """Parse an exposition document.

    Returns ``(families, samples, failures)`` where ``families`` maps
    family name → ``{"type", "help"}``, ``samples`` is a list of
    ``(sample_name, labels_dict, value, line_no)`` tuples, and
    ``failures`` collects every structural violation found on the way.
    """
    families: dict[str, dict] = {}
    samples: list[tuple[str, dict, float, int]] = []
    failures: list[str] = []
    pending_help: str | None = None

    if not text.endswith("\n"):
        failures.append("document must end with a newline")

    for line_no, line in enumerate(text.splitlines(), start=1):
        if line != line.rstrip():
            failures.append(f"line {line_no}: trailing whitespace")
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 4:
                failures.append(f"line {line_no}: HELP without text")
                continue
            name = parts[2]
            if name in families:
                failures.append(f"line {line_no}: duplicate HELP for "
                                f"{name}")
            pending_help = name
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                failures.append(f"line {line_no}: malformed TYPE line")
                continue
            name, kind = parts[2], parts[3]
            if pending_help != name:
                failures.append(f"line {line_no}: TYPE for {name} not "
                                f"immediately after its HELP")
            if kind not in _TYPES:
                failures.append(f"line {line_no}: unknown type {kind!r}")
            if name in families:
                failures.append(f"line {line_no}: duplicate TYPE for "
                                f"{name}")
            families[name] = {"type": kind, "help": True}
            pending_help = None
            continue
        if line.startswith("#"):
            continue  # free-form comment — legal
        match = re.match(r"([a-zA-Z_:][a-zA-Z0-9_:]*)"
                         r"(?:\{(.*)\})?\s+(\S+)$", line)
        if not match:
            failures.append(f"line {line_no}: unparseable sample "
                            f"{line[:50]!r}")
            continue
        name, label_body, raw_value = match.groups()
        labels = (_parse_labels(label_body, failures, line_no)
                  if label_body else {})
        if labels is None:
            continue
        for label in labels:
            if not _LABEL_NAME.fullmatch(label):
                failures.append(f"line {line_no}: bad label name "
                                f"{label!r}")
        try:
            value = float(raw_value)
        except ValueError:
            failures.append(f"line {line_no}: non-numeric value "
                            f"{raw_value!r}")
            continue
        samples.append((name, labels, value, line_no))
    return families, samples, failures


def _family_of(sample_name: str, families: dict) -> str | None:
    """The declared family a sample line belongs to, if any."""
    if sample_name in families:
        kind = families[sample_name]["type"]
        # a histogram's bare name is not a legal sample
        if kind == "histogram":
            return None
        return sample_name
    for base, meta in families.items():
        for suffix in _SUFFIXES.get(meta["type"], ()):
            if suffix and sample_name == base + suffix:
                return base
    return None


def check_exposition(text: str) -> list[str]:
    """Every structural violation in ``text`` (empty list = clean)."""
    families, samples, failures = parse_exposition(text)

    seen: set[tuple[str, tuple]] = set()
    bucket_series: dict[tuple[str, tuple], list[tuple[float, float]]] = {}
    counts: dict[tuple[str, tuple], float] = {}

    for name, labels, value, line_no in samples:
        family = _family_of(name, families)
        if family is None:
            failures.append(f"line {line_no}: sample {name} has no "
                            f"HELP/TYPE family")
            continue
        kind = families[family]["type"]
        key = (name, tuple(sorted(labels.items())))
        if key in seen:
            failures.append(f"line {line_no}: duplicate sample {name}"
                            f"{dict(labels)}")
        seen.add(key)
        if kind == "counter" and (value < 0 or math.isnan(value)):
            failures.append(f"line {line_no}: counter {name} has "
                            f"non-monotonic-safe value {value}")
        if kind == "histogram":
            group = tuple(sorted((k, v) for k, v in labels.items()
                                 if k != "le"))
            if name.endswith("_bucket"):
                if "le" not in labels:
                    failures.append(f"line {line_no}: bucket sample "
                                    f"missing 'le'")
                    continue
                le = labels["le"]
                bound = math.inf if le == "+Inf" else float(le)
                bucket_series.setdefault((family, group), []).append(
                    (bound, value))
            elif name.endswith("_count"):
                counts[(family, group)] = value

    for (family, group), series in sorted(bucket_series.items()):
        ordered = sorted(series)
        if not math.isinf(ordered[-1][0]):
            failures.append(f"{family}{dict(group)}: bucket series "
                            f"missing le=\"+Inf\"")
            continue
        running = -math.inf
        for bound, value in ordered:
            if value < running:
                failures.append(
                    f"{family}{dict(group)}: bucket le={bound:g} count "
                    f"{value} decreases (cumulative violated)")
                break
            running = value
        total = counts.get((family, group))
        if total is None:
            failures.append(f"{family}{dict(group)}: histogram missing "
                            f"_count sample")
        elif total != ordered[-1][1]:
            failures.append(
                f"{family}{dict(group)}: _count {total} != +Inf bucket "
                f"{ordered[-1][1]}")
    return failures
