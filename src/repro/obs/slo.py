r"""Declarative SLOs with multi-window burn-rate alerting.

An SLO turns a stream of request outcomes into one yes/no question —
"are we spending our error budget faster than we can afford?" — which
is exactly what the upcoming QoS layer needs to decide *when* to shed
load.  The model here is the standard multi-window burn-rate scheme:

- An :class:`SLOSpec` declares an objective: either **availability**
  ("99.9% of requests succeed") or **latency** ("99% of requests
  finish within 250 ms").  Each request is classified *good* or *bad*
  against the spec.
- The **burn rate** over a window is the bad fraction divided by the
  budget ``(1 - objective)``: burn 1.0 spends the budget exactly on
  schedule, burn 10 spends it ten times too fast.  No traffic in the
  window means burn 0 — an idle service is not on fire.
- An alert uses two windows: a **fast** window (reacts in seconds)
  and a **slow** window (confirms the problem is sustained, not one
  bad tick).  The alert *fires* when **both** burns exceed
  ``burn_threshold``; it *clears* as soon as the fast burn drops back
  below the threshold, so recovery is detected at fast-window speed.

Good/bad streams live in :class:`~repro.obs.timeseries.RollingCounter`
rings sized to the slow window, so the engine inherits the time-series
module's properties: bounded memory, lazy tick advance, no background
threads (fork-safe), and explicit ``now`` everywhere for deterministic
tests.  Like the rest of :mod:`repro.obs`, classification happens on
the metrics path *after* the response payload is fully determined, so
enabling the engine cannot change a single response byte.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass

from repro.obs.timeseries import RollingCounter

__all__ = ["SLOSpec", "SLOTracker", "SLOEngine", "default_specs"]

#: Alert states, in transition order.
STATE_OK = "ok"
STATE_FIRING = "firing"


@dataclass(frozen=True)
class SLOSpec:
    """One declarative objective; immutable and self-validating.

    Parameters
    ----------
    name:
        Stable identifier, used in ``/statusz`` and alert history.
    kind:
        ``"availability"`` (bad = errored or rejected request) or
        ``"latency"`` (bad = slower than ``latency_threshold_ms``,
        errors counted bad as well).
    objective:
        Target good fraction in ``(0, 1)``, e.g. ``0.999``.
    latency_threshold_ms:
        Required for ``kind="latency"``; ignored otherwise.
    fast_window_s / slow_window_s:
        Burn-rate windows; fast must be strictly shorter.
    burn_threshold:
        Both window burns must exceed this to fire.
    """

    name: str
    kind: str
    objective: float
    latency_threshold_ms: float | None = None
    fast_window_s: float = 60.0
    slow_window_s: float = 300.0
    burn_threshold: float = 10.0

    def __post_init__(self):
        if not self.name:
            raise ValueError("SLO name must be non-empty")
        if self.kind not in ("availability", "latency"):
            raise ValueError(
                f"SLO kind must be availability|latency, got "
                f"{self.kind!r}")
        if not 0.0 < self.objective < 1.0:
            raise ValueError(
                f"objective must be in (0, 1), got {self.objective}")
        if self.kind == "latency":
            if (self.latency_threshold_ms is None
                    or self.latency_threshold_ms <= 0):
                raise ValueError(
                    "latency SLO requires latency_threshold_ms > 0, "
                    f"got {self.latency_threshold_ms}")
        if self.fast_window_s <= 0 or self.slow_window_s <= 0:
            raise ValueError(
                f"windows must be > 0, got fast={self.fast_window_s} "
                f"slow={self.slow_window_s}")
        if self.fast_window_s >= self.slow_window_s:
            raise ValueError(
                f"fast window ({self.fast_window_s}s) must be shorter "
                f"than slow window ({self.slow_window_s}s)")
        if self.burn_threshold <= 0:
            raise ValueError(
                f"burn_threshold must be > 0, got {self.burn_threshold}")

    def classify(self, seconds: float, *, error: bool = False) -> bool:
        """``True`` when the request is *good* under this spec."""
        if error:
            return False
        if self.kind == "latency":
            return seconds * 1000.0 <= self.latency_threshold_ms
        return True


class SLOTracker:
    """Good/bad accounting plus the alert state machine for one spec."""

    #: Ring resolution; fine enough that a 5 s fast window still
    #: spans several ticks.
    INTERVAL = 1.0
    HISTORY = 32

    def __init__(self, spec: SLOSpec):
        self.spec = spec
        capacity = max(4, int(spec.slow_window_s / self.INTERVAL) + 2)
        self._good = RollingCounter(self.INTERVAL, capacity)
        self._bad = RollingCounter(self.INTERVAL, capacity)
        self._lock = threading.Lock()
        self._state = STATE_OK
        self._since: float | None = None
        self._transitions: deque[dict] = deque(maxlen=self.HISTORY)

    # ------------------------------------------------------------------
    def observe(self, seconds: float, *, error: bool = False,
                now: float | None = None) -> None:
        if self.spec.classify(seconds, error=error):
            self._good.add(1.0, now)
        else:
            self._bad.add(1.0, now)

    def observe_bad(self, now: float | None = None) -> None:
        """Record an unconditionally bad event (e.g. a shed request)."""
        self._bad.add(1.0, now)

    def burn_rate(self, window_s: float,
                  now: float | None = None) -> float:
        """Bad fraction over the window, scaled by the error budget."""
        good = self._good.total(window_s, now)
        bad = self._bad.total(window_s, now)
        total = good + bad
        if total <= 0:
            return 0.0
        return (bad / total) / (1.0 - self.spec.objective)

    # ------------------------------------------------------------------
    def evaluate(self, now: float | None = None) -> dict:
        """Advance the alert state machine and report it.

        Fires when both window burns exceed the threshold; clears when
        the fast burn recovers.  Returns a JSON-ready dict.
        """
        spec = self.spec
        fast = self.burn_rate(spec.fast_window_s, now)
        slow = self.burn_rate(spec.slow_window_s, now)
        with self._lock:
            state = self._state
            if (state == STATE_OK and fast >= spec.burn_threshold
                    and slow >= spec.burn_threshold):
                state = STATE_FIRING
            elif state == STATE_FIRING and fast < spec.burn_threshold:
                state = STATE_OK
            if state != self._state:
                self._state = state
                self._since = now
                self._transitions.append({
                    "state": state, "at": now,
                    "fast_burn": round(fast, 4),
                    "slow_burn": round(slow, 4)})
            return {
                "name": spec.name,
                "kind": spec.kind,
                "objective": spec.objective,
                "latency_threshold_ms": spec.latency_threshold_ms,
                "burn_threshold": spec.burn_threshold,
                "fast_window_s": spec.fast_window_s,
                "slow_window_s": spec.slow_window_s,
                "fast_burn": round(fast, 4),
                "slow_burn": round(slow, 4),
                "state": state,
                "transitions": list(self._transitions),
            }

    @property
    def state(self) -> str:
        with self._lock:
            return self._state


class SLOEngine:
    """All configured SLOs behind one observe/evaluate surface.

    ``observe_request`` classifies one finished request against every
    spec; ``observe_rejection`` marks shed load bad for availability
    specs only (a rejected request has no meaningful latency).
    ``evaluate`` advances every alert state machine and returns the
    list ``/statusz`` renders.
    """

    def __init__(self, specs: tuple[SLOSpec, ...] | list[SLOSpec] = ()):
        names = [spec.name for spec in specs]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate SLO names: {sorted(names)}")
        self._trackers = tuple(SLOTracker(spec) for spec in specs)

    def __len__(self) -> int:
        return len(self._trackers)

    @property
    def specs(self) -> tuple[SLOSpec, ...]:
        return tuple(tracker.spec for tracker in self._trackers)

    def tracker(self, name: str) -> SLOTracker:
        for tracker in self._trackers:
            if tracker.spec.name == name:
                return tracker
        raise KeyError(name)

    # ------------------------------------------------------------------
    def observe_request(self, seconds: float, *, error: bool = False,
                        now: float | None = None) -> None:
        for tracker in self._trackers:
            tracker.observe(seconds, error=error, now=now)

    def observe_rejection(self, now: float | None = None) -> None:
        for tracker in self._trackers:
            if tracker.spec.kind == "availability":
                tracker.observe_bad(now)

    def evaluate(self, now: float | None = None) -> list[dict]:
        return [tracker.evaluate(now) for tracker in self._trackers]

    def firing(self, now: float | None = None) -> list[str]:
        """Names of SLOs currently firing (evaluates as a side effect)."""
        return [report["name"] for report in self.evaluate(now)
                if report["state"] == STATE_FIRING]


def default_specs(*, availability_objective: float = 0.999,
                  latency_objective: float = 0.99,
                  latency_threshold_ms: float = 250.0,
                  fast_window_s: float = 60.0,
                  slow_window_s: float = 300.0,
                  burn_threshold: float = 10.0) -> tuple[SLOSpec, ...]:
    """The service's standard pair: availability + latency."""
    return (
        SLOSpec(name="availability", kind="availability",
                objective=availability_objective,
                fast_window_s=fast_window_s,
                slow_window_s=slow_window_s,
                burn_threshold=burn_threshold),
        SLOSpec(name="latency", kind="latency",
                objective=latency_objective,
                latency_threshold_ms=latency_threshold_ms,
                fast_window_s=fast_window_s,
                slow_window_s=slow_window_s,
                burn_threshold=burn_threshold),
    )
