r"""Fixed-interval ring-buffer time series for continuous telemetry.

Everything the service exposed so far is either one request (a span
tree, a slow-log line) or a since-boot aggregate (counters, histogram
totals).  Neither can answer "what was the error rate over the last
five minutes" — the question every SLO, dashboard, and straggler
detector actually asks.  This module adds that middle timescale: each
series is a fixed ring of per-tick buckets (one tick = ``interval``
seconds), so memory is bounded at construction time and a windowed
read is a single pass over at most ``capacity`` slots.

Design constraints, shared with the rest of :mod:`repro.obs`:

- **stdlib-only, no background threads.**  Ticks advance lazily:
  every write stamps its slot with the current tick number and resets
  the slot if the stamp is stale.  Reads simply ignore slots whose
  stamp falls outside the requested window.  Nothing ever needs to
  "expire" data on a timer, which keeps the module fork-safe — a
  forked child inherits plain lists and a lock, never a thread.
- **bounded memory.**  A series allocates ``capacity`` slots up front
  and never grows, regardless of traffic or uptime.
- **deterministic tests.**  Every mutating and reading method takes
  an optional ``now`` (seconds, monotonic); production callers omit
  it, tests pass explicit timestamps and never sleep.

Three series kinds cover the service's needs:

- :class:`RollingCounter` — monotone events per tick (requests,
  errors, SLO good/bad events); windowed ``total`` and ``rate``.
- :class:`RollingGauge` — last-write-wins samples per tick (queue
  depth); windowed ``mean`` / ``max`` and the latest sample.
- :class:`RollingHistogram` — per-tick bucket counts over the shared
  log-spaced latency bounds; windowed quantiles by merging the live
  ticks into one :class:`~repro.obs.histogram.LatencyHistogram`-shaped
  count vector.

:class:`TimeSeriesStore` is the named registry ``ServiceMetrics``
owns; its :meth:`~TimeSeriesStore.window_snapshot` is the substrate
for ``/statusz``, ``repro top`` and ``repro obs report``.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left

from repro.obs.histogram import DEFAULT_BUCKETS, format_le

__all__ = ["RollingCounter", "RollingGauge", "RollingHistogram",
           "TimeSeriesStore"]


def _monotonic() -> float:
    return time.monotonic()


class _Series:
    """Shared ring mechanics: tick arithmetic and slot recycling."""

    def __init__(self, interval: float, capacity: int):
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        if capacity < 2:
            raise ValueError(f"capacity must be >= 2, got {capacity}")
        self.interval = float(interval)
        self.capacity = int(capacity)
        # None marks a never-written slot; a numeric sentinel would
        # alias a real tick when a window reaches back that far
        self._ticks: list[int | None] = [None] * self.capacity
        self._lock = threading.Lock()

    def span_seconds(self) -> float:
        """Longest window this series can answer for."""
        return self.interval * self.capacity

    def _tick(self, now: float | None) -> int:
        return int((now if now is not None else _monotonic())
                   // self.interval)

    def _live_slots(self, window_s: float, now: float | None):
        """Yield slot indexes whose stamp lies inside the window.

        The caller must hold ``self._lock``.  A window of ``w`` seconds
        covers the current (partial) tick plus enough whole ticks to
        span ``w``, clamped to the ring capacity.
        """
        current = self._tick(now)
        ticks = min(self.capacity,
                    max(1, -int(-float(window_s) // self.interval)))
        first = current - ticks + 1
        for slot, stamp in enumerate(self._ticks):
            if stamp is not None and first <= stamp <= current:
                yield slot


class RollingCounter(_Series):
    """Windowed event counter: one float accumulator per tick."""

    def __init__(self, interval: float = 1.0, capacity: int = 360):
        super().__init__(interval, capacity)
        self._values = [0.0] * self.capacity

    def add(self, value: float = 1.0, now: float | None = None) -> None:
        tick = self._tick(now)
        slot = tick % self.capacity
        with self._lock:
            if self._ticks[slot] != tick:
                self._ticks[slot] = tick
                self._values[slot] = 0.0
            self._values[slot] += value

    def total(self, window_s: float, now: float | None = None) -> float:
        """Sum of events recorded within the trailing window."""
        with self._lock:
            return sum(self._values[slot]
                       for slot in self._live_slots(window_s, now))

    def rate(self, window_s: float, now: float | None = None) -> float:
        """Events per second over the trailing window."""
        window_s = float(window_s)
        if window_s <= 0:
            return 0.0
        return self.total(window_s, now) / window_s


class RollingGauge(_Series):
    """Windowed sampled value: last write wins within a tick."""

    def __init__(self, interval: float = 1.0, capacity: int = 360):
        super().__init__(interval, capacity)
        self._values = [0.0] * self.capacity
        self._latest = 0.0
        self._seen = False

    def set(self, value: float, now: float | None = None) -> None:
        tick = self._tick(now)
        slot = tick % self.capacity
        with self._lock:
            self._ticks[slot] = tick
            self._values[slot] = float(value)
            self._latest = float(value)
            self._seen = True

    def latest(self) -> float:
        """Most recent sample ever set (0.0 before the first)."""
        with self._lock:
            return self._latest

    def _window_values(self, window_s: float,
                       now: float | None) -> list[float]:
        with self._lock:
            return [self._values[slot]
                    for slot in self._live_slots(window_s, now)]

    def mean(self, window_s: float, now: float | None = None) -> float:
        values = self._window_values(window_s, now)
        return sum(values) / len(values) if values else 0.0

    def max(self, window_s: float, now: float | None = None) -> float:
        values = self._window_values(window_s, now)
        return max(values) if values else 0.0


class RollingHistogram(_Series):
    """Windowed latency distribution: per-tick bucket count vectors.

    Buckets share the service-wide log-spaced bounds so a windowed
    snapshot merges with the since-boot histograms bucket-for-bucket.
    """

    def __init__(self, interval: float = 1.0, capacity: int = 360,
                 bounds: tuple[float, ...] = DEFAULT_BUCKETS):
        super().__init__(interval, capacity)
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("bounds must be a non-empty ascending tuple")
        self.bounds = tuple(float(bound) for bound in bounds)
        self._num_buckets = len(self.bounds) + 1
        self._counts = [[0] * self._num_buckets
                        for _ in range(self.capacity)]
        self._sums = [0.0] * self.capacity

    def observe(self, seconds: float, now: float | None = None) -> None:
        index = bisect_left(self.bounds, seconds)
        tick = self._tick(now)
        slot = tick % self.capacity
        with self._lock:
            if self._ticks[slot] != tick:
                self._ticks[slot] = tick
                self._counts[slot] = [0] * self._num_buckets
                self._sums[slot] = 0.0
            self._counts[slot][index] += 1
            self._sums[slot] += seconds

    def _merged(self, window_s: float,
                now: float | None) -> tuple[list[int], float]:
        counts = [0] * self._num_buckets
        total = 0.0
        with self._lock:
            for slot in self._live_slots(window_s, now):
                slot_counts = self._counts[slot]
                for index in range(self._num_buckets):
                    counts[index] += slot_counts[index]
                total += self._sums[slot]
        return counts, total

    def count(self, window_s: float, now: float | None = None) -> int:
        return sum(self._merged(window_s, now)[0])

    def quantile(self, q: float, window_s: float,
                 now: float | None = None) -> float:
        """Bucket-resolution quantile over the trailing window."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        counts, _ = self._merged(window_s, now)
        total = sum(counts)
        if total == 0:
            return 0.0
        target = q * total
        running = 0
        for bound, value in zip(self.bounds, counts):
            running += value
            if running >= target:
                return bound
        return self.bounds[-1]

    def snapshot(self, window_s: float,
                 now: float | None = None) -> dict:
        """Prometheus-shaped cumulative view of the trailing window."""
        counts, total = self._merged(window_s, now)
        cumulative: list[tuple[str, int]] = []
        running = 0
        for bound, value in zip(self.bounds, counts):
            running += value
            cumulative.append((format_le(bound), running))
        cumulative.append(("+Inf", running + counts[-1]))
        return {"buckets": cumulative, "sum": total,
                "count": running + counts[-1]}


class TimeSeriesStore:
    """Named registry of rolling series with one clock and layout.

    ``counter`` / ``gauge`` / ``histogram`` create on first use and
    return the same object thereafter (create-or-get, like Prometheus
    client registries), so call sites never coordinate registration.
    """

    def __init__(self, interval: float = 1.0, capacity: int = 360,
                 bounds: tuple[float, ...] = DEFAULT_BUCKETS):
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        if capacity < 2:
            raise ValueError(f"capacity must be >= 2, got {capacity}")
        self.interval = float(interval)
        self.capacity = int(capacity)
        self.bounds = tuple(bounds)
        self._lock = threading.Lock()
        self._counters: dict[str, RollingCounter] = {}
        self._gauges: dict[str, RollingGauge] = {}
        self._histograms: dict[str, RollingHistogram] = {}

    def span_seconds(self) -> float:
        return self.interval * self.capacity

    def counter(self, name: str) -> RollingCounter:
        with self._lock:
            series = self._counters.get(name)
            if series is None:
                series = RollingCounter(self.interval, self.capacity)
                self._counters[name] = series
            return series

    def gauge(self, name: str) -> RollingGauge:
        with self._lock:
            series = self._gauges.get(name)
            if series is None:
                series = RollingGauge(self.interval, self.capacity)
                self._gauges[name] = series
            return series

    def histogram(self, name: str) -> RollingHistogram:
        with self._lock:
            series = self._histograms.get(name)
            if series is None:
                series = RollingHistogram(self.interval, self.capacity,
                                          self.bounds)
                self._histograms[name] = series
            return series

    def window_snapshot(self, window_s: float,
                        now: float | None = None) -> dict:
        """One JSON-ready view of every series over one window.

        Shape (stable; the ``/statusz`` endpoint and ``repro obs
        report`` both consume it)::

            {"window_seconds": w,
             "counters": {name: {"total": .., "rate": ..}},
             "gauges": {name: {"latest": .., "mean": .., "max": ..}},
             "histograms": {name: {"count": .., "p50": ..,
                                   "p95": .., "p99": ..}}}
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        window_s = float(window_s)
        return {
            "window_seconds": window_s,
            "counters": {
                name: {"total": series.total(window_s, now),
                       "rate": series.rate(window_s, now)}
                for name, series in sorted(counters.items())},
            "gauges": {
                name: {"latest": series.latest(),
                       "mean": series.mean(window_s, now),
                       "max": series.max(window_s, now)}
                for name, series in sorted(gauges.items())},
            "histograms": {
                name: {"count": series.count(window_s, now),
                       "p50": series.quantile(0.50, window_s, now),
                       "p95": series.quantile(0.95, window_s, now),
                       "p99": series.quantile(0.99, window_s, now)}
                for name, series in sorted(histograms.items())},
        }
