r"""Structured slow-query log: one JSON line per slow (or failed) query.

Aggregate histograms say *that* the tail got worse; the slow log says
*which queries* are in the tail and what each one was doing — the span
tree, the work counters, the batch it rode in, and how it was served
(cache / inline fold / process executor / executor fallback).  Each
entry is a single self-contained JSON object on its own line, so the
log is greppable, tailable, and machine-readable without a parser
beyond ``json.loads``.

Admission policy: a request is logged when its end-to-end latency
meets ``threshold_ms``, or unconditionally when it errored
(always-sample-errors — failures are precisely the requests you can
least afford to lose).  A bounded in-memory ring of recent entries is
kept either way, so tests and debug endpoints can inspect the log
without a file.

Entry schema (stable; additions are backwards-compatible)::

    {
      "ts": <unix seconds>,          "request_id": "<pid>-<seq>",
      "endpoint": "query"|"pair",    "kind": "source"|"target",
      "node": int,  "alpha": float,  "epsilon": float,
      "seconds": float,              "status": "ok"|"error",
      "error": str|null,             "cached": bool,
      "batch_size": int|null,        "disposition": str|null,
      "work": {counter: int, ...},   "trace": {span tree}|null
    }

``repro trace tail`` and ``repro trace summarize`` read this format
(see :func:`read_slowlog` / :func:`summarize_entries`).
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque

from repro.obs.histogram import exact_quantile

__all__ = ["SlowLog", "read_slowlog", "summarize_entries", "format_entry"]

#: Keys every slow-log entry carries (schema v1).
ENTRY_FIELDS = ("ts", "request_id", "endpoint", "kind", "node", "alpha",
                "epsilon", "seconds", "status", "error", "cached",
                "batch_size", "disposition", "work", "trace")


class SlowLog:
    """Threshold-filtered JSON-lines logger for slow and failed queries.

    Parameters
    ----------
    path:
        Destination file (appended, line-buffered).  ``None`` keeps
        entries only in the in-memory ring.
    threshold_ms:
        Latency at or above which an ``ok`` request is logged.
        Errors are always logged regardless of latency.
    capacity:
        In-memory ring size (most recent admitted entries).
    max_bytes:
        Size cap for the on-disk file.  When a write would push the
        file past the cap, the current file is renamed to
        ``<path>.1`` (replacing any previous rotation) and a fresh
        file is started, so a long churn run holds at most
        ``2 * max_bytes`` on disk.  ``None`` (the default) never
        rotates.
    """

    def __init__(self, path: str | os.PathLike | None = None,
                 threshold_ms: float = 250.0, capacity: int = 128,
                 max_bytes: int | None = None):
        if threshold_ms < 0:
            raise ValueError(
                f"threshold_ms must be >= 0, got {threshold_ms}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(
                f"max_bytes must be >= 1, got {max_bytes}")
        self.path = os.fspath(path) if path is not None else None
        self.threshold = float(threshold_ms) / 1000.0
        self.max_bytes = int(max_bytes) if max_bytes is not None else None
        self._ring: deque[dict] = deque(maxlen=int(capacity))
        self._lock = threading.Lock()
        self._handle = None
        self._bytes = 0
        self._written = 0
        self._skipped = 0
        self._rotations = 0

    @property
    def rotated_path(self) -> str | None:
        """Where the previous generation lands after a rotation."""
        return f"{self.path}.1" if self.path is not None else None

    def _open_locked(self) -> None:
        self._handle = open(self.path, "a",  # noqa: SIM115
                            encoding="utf-8", buffering=1)
        self._bytes = os.path.getsize(self.path)

    def _rotate_locked(self) -> None:
        """Swap the live file aside and start fresh (lock held)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        os.replace(self.path, self.rotated_path)
        self._rotations += 1
        self._open_locked()

    # ------------------------------------------------------------------
    def admit(self, seconds: float, *, error: bool = False) -> bool:
        """The admission rule: slow enough, or an error."""
        return error or seconds >= self.threshold

    def record(self, *, request_id: str, endpoint: str, kind: str,
               node: int, alpha: float, epsilon: float, seconds: float,
               error: str | None = None, cached: bool = False,
               batch_size: int | None = None,
               disposition: str | None = None,
               work: dict | None = None,
               trace: dict | None = None) -> dict | None:
        """Log one completed request if it meets the admission rule.

        Returns the entry dict when admitted, ``None`` when skipped.
        """
        if not self.admit(seconds, error=error is not None):
            with self._lock:
                self._skipped += 1
            return None
        entry = {
            "ts": round(time.time(), 6),
            "request_id": request_id,
            "endpoint": endpoint,
            "kind": kind,
            "node": int(node),
            "alpha": float(alpha),
            "epsilon": float(epsilon),
            "seconds": round(float(seconds), 6),
            "status": "error" if error is not None else "ok",
            "error": error,
            "cached": bool(cached),
            "batch_size": batch_size,
            "disposition": disposition,
            "work": dict(work or {}),
            "trace": trace,
        }
        line = json.dumps(entry, sort_keys=True) + "\n"
        with self._lock:
            self._ring.append(entry)
            self._written += 1
            if self.path is not None:
                if self._handle is None:
                    self._open_locked()
                size = len(line.encode("utf-8"))
                if (self.max_bytes is not None and self._bytes > 0
                        and self._bytes + size > self.max_bytes):
                    self._rotate_locked()
                self._handle.write(line)
                self._bytes += size
        return entry

    def recent(self) -> list[dict]:
        """Most recent admitted entries, oldest first."""
        with self._lock:
            return list(self._ring)

    def stats(self) -> dict:
        """Counters for ``/healthz``."""
        with self._lock:
            return {"written": self._written, "skipped": self._skipped,
                    "threshold_ms": self.threshold * 1000.0,
                    "path": self.path, "rotations": self._rotations,
                    "max_bytes": self.max_bytes}

    def close(self) -> None:
        """Flush and close the file handle (idempotent)."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "SlowLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# Readers — the `repro trace` subcommand drives these
# ----------------------------------------------------------------------
def read_slowlog(path: str | os.PathLike) -> list[dict]:
    """Parse a slow-log file; raises ``ValueError`` on a corrupt line."""
    entries = []
    with open(path, encoding="utf-8") as handle:
        for number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}: line {number} is not valid JSON "
                    f"({error})") from error
            if not isinstance(entry, dict):
                raise ValueError(
                    f"{path}: line {number} is not a JSON object")
            entries.append(entry)
    return entries


def _walk_spans(node: dict, acc: dict[str, list[float]]) -> None:
    name = node.get("name")
    if name:
        acc.setdefault(name, []).append(
            float(node.get("duration_ms", 0.0)))
    for child in node.get("children", ()):  # pragma: no branch
        _walk_spans(child, acc)


def summarize_entries(entries: list[dict]) -> dict:
    """Aggregate a slow log for ``repro trace summarize``.

    Returns ``{"overview": {...}, "stages": [row, ...]}`` where stage
    rows aggregate span durations by span name across every entry that
    carried a trace.  Deterministic for a fixed input file.
    """
    seconds = sorted(float(entry.get("seconds", 0.0))
                     for entry in entries)
    errors = sum(1 for entry in entries
                 if entry.get("status") == "error")
    cached = sum(1 for entry in entries if entry.get("cached"))
    dispositions: dict[str, int] = {}
    for entry in entries:
        label = entry.get("disposition") or "unknown"
        dispositions[label] = dispositions.get(label, 0) + 1

    overview = {
        "entries": len(entries),
        "errors": errors,
        "cached": cached,
        "p50_seconds": round(exact_quantile(seconds, 0.50), 6),
        "p95_seconds": round(exact_quantile(seconds, 0.95), 6),
        "max_seconds": round(seconds[-1] if seconds else 0.0, 6),
        "dispositions": dict(sorted(dispositions.items())),
    }

    spans: dict[str, list[float]] = {}
    for entry in entries:
        trace = entry.get("trace")
        if isinstance(trace, dict):
            _walk_spans(trace, spans)
    stages = [{
        "span": name,
        "count": len(values),
        "total_ms": round(sum(values), 3),
        "mean_ms": round(sum(values) / len(values), 3),
        "max_ms": round(max(values), 3),
    } for name, values in sorted(spans.items())]
    return {"overview": overview, "stages": stages}


def format_entry(entry: dict) -> str:
    """One-line human rendering for ``repro trace tail``."""
    status = entry.get("status", "?")
    marker = "ok " if status == "ok" else "ERR"
    where = (f"{entry.get('endpoint', '?')}/{entry.get('kind', '?')}"
             f" node={entry.get('node', '?')}")
    extras = []
    if entry.get("cached"):
        extras.append("cached")
    if entry.get("batch_size") is not None:
        extras.append(f"batch={entry['batch_size']}")
    if entry.get("disposition"):
        extras.append(str(entry["disposition"]))
    if entry.get("error"):
        extras.append(str(entry["error"]))
    suffix = f"  [{', '.join(extras)}]" if extras else ""
    return (f"{marker} {entry.get('seconds', 0.0):8.4f}s  "
            f"{entry.get('request_id', '-'):<12s} {where}{suffix}")
