"""Chunked multi-process forest-sampling engine.

The Monte-Carlo stage of every two-stage algorithm draws ω independent
forests and folds each through an estimator — embarrassingly parallel
across forests.  This engine splits the batch into *chunks*, runs each
chunk in a worker process over shared read-only CSR arrays
(:class:`~repro.parallel.shared_graph.SharedCSRGraph`), and merges the
per-chunk accumulators in chunk order.

Determinism contract
--------------------
A fixed seed yields **bit-identical** results for any worker count:

- the chunk plan depends only on the sample count (never on the worker
  count or the host),
- each chunk gets its own child generator via
  :func:`repro.rng.spawn_children`, so chunk *c* consumes the same
  stream whether it runs in the parent or in any worker,
- per-chunk accumulators are merged in chunk-index order, fixing the
  floating-point summation order.

The serial path (``workers=1``, or platforms without the ``fork``
start method, or a single-chunk plan) executes the identical per-chunk
closures in-process, so ``workers=1`` *is* the fallback, not a second
code path.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field

import numpy as np

from repro.counters import WorkCounters
from repro.exceptions import ConfigError
from repro.forests.batch_sampling import sample_forests_batch
from repro.forests.estimators import (CVAccumulator, accumulate_cv_estimates,
                                      accumulate_estimates)
from repro.forests.forest import RootedForest
from repro.forests.sampling import sample_forests
from repro.graph.csr import Graph
from repro.parallel.shared_graph import SharedCSRGraph
from repro.rng import spawn_children

__all__ = ["plan_chunks", "resolve_workers", "sample_forests_parallel",
           "parallel_estimate_stage", "StageResult", "DEFAULT_CHUNK_SIZE",
           "STRATIFIED_CHUNK_SIZE"]

#: Forests per chunk when the caller does not override it.  Small
#: enough that ω ≥ 32 already load-balances over 4 workers, large
#: enough that per-task dispatch overhead stays negligible.
DEFAULT_CHUNK_SIZE = 8

#: Default chunk size under ``variance_mode="stratified"``.  The
#: Latin-hypercube coupling only acts *within* a chunk (chunks stay
#: independent so the plan remains worker-count-invariant), so wider
#: chunks realise more of the variance reduction; 32 layers recover
#: most of the asymptotic gain while still splitting ω ≥ 128 across
#: four workers.
STRATIFIED_CHUNK_SIZE = 32


def plan_chunks(count: int, chunk_size: int | None = None) -> list[int]:
    """Split ``count`` samples into deterministic chunk sizes.

    The plan is a pure function of ``count`` (and the explicit
    ``chunk_size``) — never of the worker count — which is what makes
    results worker-count-invariant.
    """
    if count < 0:
        raise ConfigError("count must be non-negative")
    size = DEFAULT_CHUNK_SIZE if chunk_size is None else int(chunk_size)
    if size <= 0:
        raise ConfigError("chunk_size must be positive")
    full, rest = divmod(count, size)
    return [size] * full + ([rest] if rest else [])


def resolve_workers(workers: int | None) -> int:
    """Normalise a worker-count request (``None``/``0`` → cpu count)."""
    if workers is None or workers == 0:
        return max(os.cpu_count() or 1, 1)
    if not isinstance(workers, (int, np.integer)) or workers < 1:
        raise ConfigError(f"workers must be a positive int, got {workers!r}")
    return int(workers)


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


@dataclass
class StageResult:
    """Merged output of a chunked estimator stage.

    Under ``variance_mode="control_variate"`` the stage additionally
    carries the merged variate sums (``cv_t``/``cv_at``/``cv_tt``);
    :meth:`cv_accumulator` repackages them for the β fit
    (:func:`repro.forests.estimators.cv_combine`).
    """

    sums: np.ndarray
    squares: np.ndarray | None
    drawn: int
    counters: WorkCounters = field(default_factory=WorkCounters)
    num_chunks: int = 0
    workers_used: int = 1
    cv_t: np.ndarray | None = None
    cv_at: np.ndarray | None = None
    cv_tt: np.ndarray | None = None

    @property
    def mean(self) -> np.ndarray:
        """Monte-Carlo mean estimate (zeros if nothing was drawn)."""
        if self.drawn == 0:
            return np.zeros_like(self.sums)
        return self.sums / self.drawn

    def stderr(self) -> np.ndarray | None:
        """Per-node standard error of the mean (needs ``squares``)."""
        if self.squares is None or self.drawn == 0:
            return None
        mean = self.mean
        variance = np.maximum(self.squares / self.drawn - mean * mean, 0.0)
        return np.sqrt(variance / self.drawn)

    def cv_accumulator(self) -> CVAccumulator:
        """The stage's control-variate sums as one mergeable record."""
        if self.cv_t is None:
            raise ConfigError(
                "stage was not run with variance_mode='control_variate'")
        return CVAccumulator(sums=self.sums, squares=self.squares,
                             t_sums=self.cv_t, at_sums=self.cv_at,
                             tt_sums=self.cv_tt, drawn=self.drawn)


# ----------------------------------------------------------------------
# Worker plumbing.  The context travels through the fork, so the task
# payload is just (chunk_count, child_generator).
# ----------------------------------------------------------------------
_WORKER_CTX: dict = {}


def _init_worker(ctx: dict) -> None:
    _WORKER_CTX.clear()
    _WORKER_CTX.update(ctx)


def _run_sample_chunk(task) -> list[RootedForest]:
    chunk_count, generator = task
    ctx = _WORKER_CTX
    if ctx["batch"] or ctx.get("stratified"):
        return sample_forests_batch(ctx["graph"], ctx["alpha"], chunk_count,
                                    rng=generator,
                                    stratified=bool(ctx.get("stratified")))
    return list(sample_forests(ctx["graph"], ctx["alpha"], chunk_count,
                               rng=generator, method=ctx["method"]))


def _run_estimate_chunk(task) -> tuple[np.ndarray, np.ndarray | None,
                                       int, dict, tuple | None]:
    chunk_count, generator = task
    ctx = _WORKER_CTX
    counters = WorkCounters()
    mode = ctx.get("variance_mode", "improved")
    if mode == "stratified":
        forests = sample_forests_batch(ctx["graph"], ctx["alpha"],
                                       chunk_count, rng=generator,
                                       counters=counters, stratified=True)
        sums, squares, drawn = accumulate_estimates(
            forests, ctx["residual"], ctx["degrees"], kind=ctx["kind"],
            improved=ctx["improved"], track_squares=ctx["track_squares"])
        return sums, squares, drawn, counters.as_dict(), None
    forests = sample_forests(ctx["graph"], ctx["alpha"], chunk_count,
                             rng=generator, method=ctx["method"])
    if mode == "control_variate":
        acc = accumulate_cv_estimates(
            forests, ctx["residual"], ctx["degrees"], kind=ctx["kind"],
            track_squares=ctx["track_squares"], counters=counters)
        return (acc.sums, acc.squares, acc.drawn, counters.as_dict(),
                (acc.t_sums, acc.at_sums, acc.tt_sums))
    sums, squares, drawn = accumulate_estimates(
        forests, ctx["residual"], ctx["degrees"], kind=ctx["kind"],
        improved=ctx["improved"], track_squares=ctx["track_squares"],
        counters=counters)
    return sums, squares, drawn, counters.as_dict(), None


def _run_chunked(graph: Graph, ctx: dict, runner, tasks: list,
                 workers: int) -> tuple[list, int]:
    """Run ``runner`` over ``tasks``, in a pool or serially.

    Returns ``(results_in_task_order, workers_used)``.  The pool path
    shares the CSR arrays; the serial path runs the identical closures
    in-process, so both produce the same results bit for bit.
    """
    effective = min(workers, len(tasks))
    if effective <= 1 or not _fork_available():
        _init_worker(dict(ctx, graph=graph))
        try:
            return [runner(task) for task in tasks], 1
        finally:
            _WORKER_CTX.clear()
    mp_ctx = multiprocessing.get_context("fork")
    with SharedCSRGraph(graph) as shared:
        worker_ctx = dict(ctx, graph=shared.graph)
        with mp_ctx.Pool(processes=effective, initializer=_init_worker,
                         initargs=(worker_ctx,)) as pool:
            results = pool.map(runner, tasks, chunksize=1)
    return results, effective


def _tasks_for(count: int, rng, chunk_size: int | None) -> list:
    plan = plan_chunks(count, chunk_size)
    children = spawn_children(rng, len(plan))
    return list(zip(plan, children))


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------
def sample_forests_parallel(graph: Graph, alpha: float, count: int,
                            rng: np.random.Generator | int | None = None, *,
                            workers: int | None = 1,
                            method: str = "cycle_popping",
                            batch: bool = False,
                            chunk_size: int | None = None,
                            counters: WorkCounters | None = None,
                            stratified: bool = False,
                            ) -> list[RootedForest]:
    """Sample ``count`` independent forests across worker processes.

    Parameters
    ----------
    workers:
        Worker processes (``None``/``0`` → cpu count, ``1`` → serial).
    method:
        Sampler per forest (as :func:`~repro.forests.sampling.sample_forest`);
        ignored when ``batch`` is set.
    batch:
        Use the layered batch sampler
        (:func:`~repro.forests.batch_sampling.sample_forests_batch`)
        inside each chunk instead of one-at-a-time sampling.
    counters:
        Optional :class:`~repro.counters.WorkCounters` accumulating the
        work done across all chunks.
    stratified:
        Couple each chunk's layers through the Latin-hypercube batch
        sampler (implies the batch path; widens the default chunk to
        :data:`STRATIFIED_CHUNK_SIZE`).  Marginals are unchanged, so
        downstream consumers need no changes.

    With a fixed seed the returned forests are identical for every
    ``workers`` value (see the module determinism contract).
    """
    if count == 0:
        return []
    if chunk_size is None and stratified:
        chunk_size = STRATIFIED_CHUNK_SIZE
    tasks = _tasks_for(count, rng, chunk_size)
    ctx = {"alpha": alpha, "method": method, "batch": batch,
           "stratified": stratified}
    results, _ = _run_chunked(graph, ctx, _run_sample_chunk, tasks,
                              resolve_workers(workers))
    forests: list[RootedForest] = []
    for chunk in results:
        forests.extend(chunk)
    if counters is not None:
        for forest in forests:
            counters.record_forest(forest)
    return forests


def parallel_estimate_stage(graph: Graph, alpha: float, count: int,
                            residual: np.ndarray, *,
                            kind: str, improved: bool,
                            rng: np.random.Generator | int | None = None,
                            workers: int | None = 1,
                            method: str = "cycle_popping",
                            track_squares: bool = False,
                            chunk_size: int | None = None,
                            variance_mode: str = "improved") -> StageResult:
    """Sample ``count`` forests and fold them through an estimator.

    The worker-side fold never ships forests back to the parent — each
    chunk returns only its ``O(n)`` accumulator arrays — so the
    inter-process traffic is independent of ω.

    ``variance_mode`` selects the variance-reduction machinery:
    ``"improved"`` (the historical path — the ``improved`` flag picks
    basic vs conditional-MC), ``"stratified"`` (Latin-hypercube-coupled
    chunks via the batch sampler, same estimator as ``improved``), or
    ``"control_variate"`` (basic estimator plus mergeable variate sums;
    the caller fits β via :meth:`StageResult.cv_accumulator`).

    Returns a :class:`StageResult` whose ``sums``/``squares``/``drawn``
    match a serial chunk-ordered fold bit for bit, for any ``workers``.
    """
    residual = np.asarray(residual, dtype=np.float64)
    if residual.shape != (graph.num_nodes,):
        raise ConfigError(
            f"residual must have shape ({graph.num_nodes},), "
            f"got {residual.shape}")
    if chunk_size is None and variance_mode == "stratified":
        chunk_size = STRATIFIED_CHUNK_SIZE
    cv = variance_mode == "control_variate"
    if count == 0:
        zeros = np.zeros(graph.num_nodes)
        return StageResult(
            sums=zeros.copy(),
            squares=np.zeros(graph.num_nodes) if track_squares else None,
            drawn=0,
            cv_t=zeros.copy() if cv else None,
            cv_at=zeros.copy() if cv else None,
            cv_tt=zeros.copy() if cv else None)
    tasks = _tasks_for(count, rng, chunk_size)
    ctx = {"alpha": alpha, "method": method, "kind": kind,
           "improved": improved, "residual": residual,
           "degrees": graph.degrees, "track_squares": track_squares,
           "variance_mode": variance_mode}
    results, used = _run_chunked(graph, ctx, _run_estimate_chunk, tasks,
                                 resolve_workers(workers))
    sums = np.zeros(graph.num_nodes)
    squares = np.zeros(graph.num_nodes) if track_squares else None
    cv_t = np.zeros(graph.num_nodes) if cv else None
    cv_at = np.zeros(graph.num_nodes) if cv else None
    cv_tt = np.zeros(graph.num_nodes) if cv else None
    drawn = 0
    counters = WorkCounters()
    for (chunk_sums, chunk_squares, chunk_drawn, chunk_counters,
         chunk_cv) in results:
        sums += chunk_sums
        if squares is not None and chunk_squares is not None:
            squares += chunk_squares
        if cv and chunk_cv is not None:
            cv_t += chunk_cv[0]
            cv_at += chunk_cv[1]
            cv_tt += chunk_cv[2]
        drawn += chunk_drawn
        counters.merge(WorkCounters(**chunk_counters))
    return StageResult(sums=sums, squares=squares, drawn=drawn,
                       counters=counters, num_chunks=len(tasks),
                       workers_used=used, cv_t=cv_t, cv_at=cv_at,
                       cv_tt=cv_tt)
