"""Chunked multi-process forest-sampling engine.

The Monte-Carlo stage of every two-stage algorithm draws ω independent
forests and folds each through an estimator — embarrassingly parallel
across forests.  This engine splits the batch into *chunks*, runs each
chunk in a worker process over shared read-only CSR arrays
(:class:`~repro.parallel.shared_graph.SharedCSRGraph`), and merges the
per-chunk accumulators in chunk order.

Determinism contract
--------------------
A fixed seed yields **bit-identical** results for any worker count:

- the chunk plan depends only on the sample count (never on the worker
  count or the host),
- each chunk gets its own child generator via
  :func:`repro.rng.spawn_children`, so chunk *c* consumes the same
  stream whether it runs in the parent or in any worker,
- per-chunk accumulators are merged in chunk-index order, fixing the
  floating-point summation order.

The serial path (``workers=1``, or platforms without the ``fork``
start method, or a single-chunk plan) executes the identical per-chunk
closures in-process, so ``workers=1`` *is* the fallback, not a second
code path.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field

import numpy as np

from repro.counters import WorkCounters
from repro.exceptions import ConfigError
from repro.forests.batch_sampling import sample_forests_batch
from repro.forests.estimators import accumulate_estimates
from repro.forests.forest import RootedForest
from repro.forests.sampling import sample_forests
from repro.graph.csr import Graph
from repro.parallel.shared_graph import SharedCSRGraph
from repro.rng import spawn_children

__all__ = ["plan_chunks", "resolve_workers", "sample_forests_parallel",
           "parallel_estimate_stage", "StageResult", "DEFAULT_CHUNK_SIZE"]

#: Forests per chunk when the caller does not override it.  Small
#: enough that ω ≥ 32 already load-balances over 4 workers, large
#: enough that per-task dispatch overhead stays negligible.
DEFAULT_CHUNK_SIZE = 8


def plan_chunks(count: int, chunk_size: int | None = None) -> list[int]:
    """Split ``count`` samples into deterministic chunk sizes.

    The plan is a pure function of ``count`` (and the explicit
    ``chunk_size``) — never of the worker count — which is what makes
    results worker-count-invariant.
    """
    if count < 0:
        raise ConfigError("count must be non-negative")
    size = DEFAULT_CHUNK_SIZE if chunk_size is None else int(chunk_size)
    if size <= 0:
        raise ConfigError("chunk_size must be positive")
    full, rest = divmod(count, size)
    return [size] * full + ([rest] if rest else [])


def resolve_workers(workers: int | None) -> int:
    """Normalise a worker-count request (``None``/``0`` → cpu count)."""
    if workers is None or workers == 0:
        return max(os.cpu_count() or 1, 1)
    if not isinstance(workers, (int, np.integer)) or workers < 1:
        raise ConfigError(f"workers must be a positive int, got {workers!r}")
    return int(workers)


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


@dataclass
class StageResult:
    """Merged output of a chunked estimator stage."""

    sums: np.ndarray
    squares: np.ndarray | None
    drawn: int
    counters: WorkCounters = field(default_factory=WorkCounters)
    num_chunks: int = 0
    workers_used: int = 1

    @property
    def mean(self) -> np.ndarray:
        """Monte-Carlo mean estimate (zeros if nothing was drawn)."""
        if self.drawn == 0:
            return np.zeros_like(self.sums)
        return self.sums / self.drawn

    def stderr(self) -> np.ndarray | None:
        """Per-node standard error of the mean (needs ``squares``)."""
        if self.squares is None or self.drawn == 0:
            return None
        mean = self.mean
        variance = np.maximum(self.squares / self.drawn - mean * mean, 0.0)
        return np.sqrt(variance / self.drawn)


# ----------------------------------------------------------------------
# Worker plumbing.  The context travels through the fork, so the task
# payload is just (chunk_count, child_generator).
# ----------------------------------------------------------------------
_WORKER_CTX: dict = {}


def _init_worker(ctx: dict) -> None:
    _WORKER_CTX.clear()
    _WORKER_CTX.update(ctx)


def _run_sample_chunk(task) -> list[RootedForest]:
    chunk_count, generator = task
    ctx = _WORKER_CTX
    if ctx["batch"]:
        return sample_forests_batch(ctx["graph"], ctx["alpha"], chunk_count,
                                    rng=generator)
    return list(sample_forests(ctx["graph"], ctx["alpha"], chunk_count,
                               rng=generator, method=ctx["method"]))


def _run_estimate_chunk(task) -> tuple[np.ndarray, np.ndarray | None,
                                       int, dict]:
    chunk_count, generator = task
    ctx = _WORKER_CTX
    counters = WorkCounters()
    forests = sample_forests(ctx["graph"], ctx["alpha"], chunk_count,
                             rng=generator, method=ctx["method"])
    sums, squares, drawn = accumulate_estimates(
        forests, ctx["residual"], ctx["degrees"], kind=ctx["kind"],
        improved=ctx["improved"], track_squares=ctx["track_squares"],
        counters=counters)
    return sums, squares, drawn, counters.as_dict()


def _run_chunked(graph: Graph, ctx: dict, runner, tasks: list,
                 workers: int) -> tuple[list, int]:
    """Run ``runner`` over ``tasks``, in a pool or serially.

    Returns ``(results_in_task_order, workers_used)``.  The pool path
    shares the CSR arrays; the serial path runs the identical closures
    in-process, so both produce the same results bit for bit.
    """
    effective = min(workers, len(tasks))
    if effective <= 1 or not _fork_available():
        _init_worker(dict(ctx, graph=graph))
        try:
            return [runner(task) for task in tasks], 1
        finally:
            _WORKER_CTX.clear()
    mp_ctx = multiprocessing.get_context("fork")
    with SharedCSRGraph(graph) as shared:
        worker_ctx = dict(ctx, graph=shared.graph)
        with mp_ctx.Pool(processes=effective, initializer=_init_worker,
                         initargs=(worker_ctx,)) as pool:
            results = pool.map(runner, tasks, chunksize=1)
    return results, effective


def _tasks_for(count: int, rng, chunk_size: int | None) -> list:
    plan = plan_chunks(count, chunk_size)
    children = spawn_children(rng, len(plan))
    return list(zip(plan, children))


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------
def sample_forests_parallel(graph: Graph, alpha: float, count: int,
                            rng: np.random.Generator | int | None = None, *,
                            workers: int | None = 1,
                            method: str = "cycle_popping",
                            batch: bool = False,
                            chunk_size: int | None = None,
                            counters: WorkCounters | None = None,
                            ) -> list[RootedForest]:
    """Sample ``count`` independent forests across worker processes.

    Parameters
    ----------
    workers:
        Worker processes (``None``/``0`` → cpu count, ``1`` → serial).
    method:
        Sampler per forest (as :func:`~repro.forests.sampling.sample_forest`);
        ignored when ``batch`` is set.
    batch:
        Use the layered batch sampler
        (:func:`~repro.forests.batch_sampling.sample_forests_batch`)
        inside each chunk instead of one-at-a-time sampling.
    counters:
        Optional :class:`~repro.counters.WorkCounters` accumulating the
        work done across all chunks.

    With a fixed seed the returned forests are identical for every
    ``workers`` value (see the module determinism contract).
    """
    if count == 0:
        return []
    tasks = _tasks_for(count, rng, chunk_size)
    ctx = {"alpha": alpha, "method": method, "batch": batch}
    results, _ = _run_chunked(graph, ctx, _run_sample_chunk, tasks,
                              resolve_workers(workers))
    forests: list[RootedForest] = []
    for chunk in results:
        forests.extend(chunk)
    if counters is not None:
        for forest in forests:
            counters.record_forest(forest)
    return forests


def parallel_estimate_stage(graph: Graph, alpha: float, count: int,
                            residual: np.ndarray, *,
                            kind: str, improved: bool,
                            rng: np.random.Generator | int | None = None,
                            workers: int | None = 1,
                            method: str = "cycle_popping",
                            track_squares: bool = False,
                            chunk_size: int | None = None) -> StageResult:
    """Sample ``count`` forests and fold them through an estimator.

    The worker-side fold never ships forests back to the parent — each
    chunk returns only its ``O(n)`` accumulator arrays — so the
    inter-process traffic is independent of ω.

    Returns a :class:`StageResult` whose ``sums``/``squares``/``drawn``
    match a serial chunk-ordered fold bit for bit, for any ``workers``.
    """
    residual = np.asarray(residual, dtype=np.float64)
    if residual.shape != (graph.num_nodes,):
        raise ConfigError(
            f"residual must have shape ({graph.num_nodes},), "
            f"got {residual.shape}")
    if count == 0:
        return StageResult(
            sums=np.zeros(graph.num_nodes),
            squares=np.zeros(graph.num_nodes) if track_squares else None,
            drawn=0)
    tasks = _tasks_for(count, rng, chunk_size)
    ctx = {"alpha": alpha, "method": method, "kind": kind,
           "improved": improved, "residual": residual,
           "degrees": graph.degrees, "track_squares": track_squares}
    results, used = _run_chunked(graph, ctx, _run_estimate_chunk, tasks,
                                 resolve_workers(workers))
    sums = np.zeros(graph.num_nodes)
    squares = np.zeros(graph.num_nodes) if track_squares else None
    drawn = 0
    counters = WorkCounters()
    for chunk_sums, chunk_squares, chunk_drawn, chunk_counters in results:
        sums += chunk_sums
        if squares is not None and chunk_squares is not None:
            squares += chunk_squares
        drawn += chunk_drawn
        counters.merge(WorkCounters(**chunk_counters))
    return StageResult(sums=sums, squares=squares, drawn=drawn,
                       counters=counters, num_chunks=len(tasks),
                       workers_used=used)
