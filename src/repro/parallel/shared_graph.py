"""Read-only CSR arrays in ``multiprocessing.shared_memory``.

The forest samplers only ever *read* the graph — ``indptr``,
``indices`` and (optionally) ``weights`` — so worker processes can run
against one shared copy instead of pickling the arrays into every
task.  :class:`SharedCSRGraph` is the graph-shaped specialisation of
the general :class:`~repro.parallel.shared_bank.SharedArrayBank`
carrier: it owns one bank holding the CSR triplet, exposes a
:class:`~repro.graph.csr.Graph` whose arrays are views into it, and
cleans the segments up on :meth:`close`.

The sampling engine uses the ``fork`` start method, so its workers
inherit the parent's mapping directly; the serving executor's
longer-lived workers instead attach by name through
:meth:`SharedCSRGraph.handle` (see :mod:`repro.service.executor`).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import Graph
from repro.parallel.shared_bank import (
    AttachedBank,
    BankHandle,
    SharedArrayBank,
)

__all__ = ["SharedCSRGraph", "graph_bank_arrays", "graph_from_bank"]


def graph_bank_arrays(graph: Graph) -> tuple[dict[str, np.ndarray], dict]:
    """The ``(arrays, meta)`` bank contents describing ``graph``."""
    arrays = {"indptr": graph.indptr, "indices": graph.indices}
    if graph.weights is not None:
        arrays["weights"] = graph.weights
    return arrays, {"directed": bool(graph.directed),
                    "num_nodes": int(graph.num_nodes)}


def graph_from_bank(arrays: dict[str, np.ndarray], meta: dict) -> Graph:
    """Rebuild a :class:`Graph` over bank-provided arrays, no copy.

    ``validate=False`` because the source graph already validated the
    identical bytes; the arrays may be read-only shared-memory or
    memmap views.
    """
    return Graph(arrays["indptr"], arrays["indices"],
                 arrays.get("weights"), directed=bool(meta["directed"]),
                 validate=False)


class SharedCSRGraph:
    """A :class:`Graph` whose CSR arrays live in shared memory.

    Use as a context manager around a parallel sampling run::

        with SharedCSRGraph(graph) as shared:
            pool_work(shared.graph)   # workers inherit the mapping

    The wrapped :attr:`graph` is structurally identical to the source
    graph (same arrays bit for bit) but is backed by shared pages, so
    forked workers read it without any copy, and :attr:`handle` lets a
    non-inheriting process attach by segment name.
    """

    def __init__(self, source: Graph):
        arrays, meta = graph_bank_arrays(source)
        self._bank: SharedArrayBank | None = SharedArrayBank(arrays, meta)
        self.graph = graph_from_bank(self._bank.arrays, meta)

    @property
    def handle(self) -> BankHandle:
        """Picklable attach-by-name handle for the CSR segments."""
        if self._bank is None:
            raise RuntimeError("SharedCSRGraph is closed")
        return self._bank.handle

    @classmethod
    def attach(cls, handle: BankHandle) -> tuple[Graph, AttachedBank]:
        """Attach to another process's shared CSR graph by handle.

        Returns ``(graph, attached_bank)`` — keep the bank alive for
        as long as the graph is used.
        """
        bank = AttachedBank(handle)
        return graph_from_bank(bank.arrays, bank.meta), bank

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release and unlink every shared block (idempotent)."""
        if self._bank is None:
            return
        # drop the numpy views before closing their backing buffers
        self.graph = None  # type: ignore[assignment]
        self._bank.close()
        self._bank = None

    def __enter__(self) -> "SharedCSRGraph":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass
