"""Read-only CSR arrays in ``multiprocessing.shared_memory``.

The forest samplers only ever *read* the graph — ``indptr``,
``indices`` and (optionally) ``weights`` — so worker processes can run
against one shared copy instead of pickling the arrays into every
task.  :class:`SharedCSRGraph` owns the shared-memory blocks, exposes a
:class:`~repro.graph.csr.Graph` whose arrays are views into them, and
cleans the blocks up on :meth:`close`.

The engine uses the ``fork`` start method, so workers inherit the
parent's mapping of the blocks directly; nothing is re-attached by
name and the only extra per-worker cost is the lazily built alias
table (``O(m)``, paid once per worker process).
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np

from repro.graph.csr import Graph

__all__ = ["SharedCSRGraph"]


def _share_array(array: np.ndarray) -> tuple[shared_memory.SharedMemory,
                                             np.ndarray]:
    """Copy ``array`` into a fresh shared-memory block; return both."""
    block = shared_memory.SharedMemory(create=True,
                                       size=max(array.nbytes, 1))
    view = np.ndarray(array.shape, dtype=array.dtype, buffer=block.buf)
    view[...] = array
    view.flags.writeable = False
    return block, view


class SharedCSRGraph:
    """A :class:`Graph` whose CSR arrays live in shared memory.

    Use as a context manager around a parallel sampling run::

        with SharedCSRGraph(graph) as shared:
            pool_work(shared.graph)   # workers inherit the mapping

    The wrapped :attr:`graph` is structurally identical to the source
    graph (same arrays bit for bit, ``validate=False`` since the source
    already validated them) but is backed by shared pages, so forked
    workers read it without any copy.
    """

    def __init__(self, source: Graph):
        self._blocks: list[shared_memory.SharedMemory] = []
        self._closed = False
        try:
            indptr_block, indptr = _share_array(source.indptr)
            self._blocks.append(indptr_block)
            indices_block, indices = _share_array(source.indices)
            self._blocks.append(indices_block)
            weights = None
            if source.weights is not None:
                weights_block, weights = _share_array(source.weights)
                self._blocks.append(weights_block)
        except Exception:
            self.close()
            raise
        self.graph = Graph(indptr, indices, weights,
                           directed=source.directed, validate=False)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release and unlink every shared block (idempotent)."""
        if self._closed:
            return
        self._closed = True
        # drop the numpy views before closing their backing buffers
        self.graph = None  # type: ignore[assignment]
        for block in self._blocks:
            try:
                block.unlink()
            except (FileNotFoundError, OSError):  # already gone
                pass
            try:
                block.close()
            except BufferError:
                # a caller still holds a view; the segment is unlinked,
                # so it disappears once those references die
                pass
        self._blocks = []

    def __enter__(self) -> "SharedCSRGraph":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass
