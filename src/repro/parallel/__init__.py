"""Multi-process execution of the forest-sampling Monte-Carlo stage.

See :mod:`repro.parallel.engine` for the chunked engine and its
determinism contract, and :mod:`repro.parallel.shared_graph` for the
shared-memory CSR carrier.
"""

from repro.parallel.engine import (
    DEFAULT_CHUNK_SIZE,
    StageResult,
    parallel_estimate_stage,
    plan_chunks,
    resolve_workers,
    sample_forests_parallel,
)
from repro.parallel.shared_graph import SharedCSRGraph

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "StageResult",
    "SharedCSRGraph",
    "parallel_estimate_stage",
    "plan_chunks",
    "resolve_workers",
    "sample_forests_parallel",
]
