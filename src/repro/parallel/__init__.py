"""Multi-process execution of the forest-sampling Monte-Carlo stage.

See :mod:`repro.parallel.engine` for the chunked engine and its
determinism contract, :mod:`repro.parallel.shared_bank` for the
general named-array shared-memory / memmap carriers, and
:mod:`repro.parallel.shared_graph` for the CSR-graph specialisation.
"""

from repro.parallel.engine import (
    DEFAULT_CHUNK_SIZE,
    StageResult,
    parallel_estimate_stage,
    plan_chunks,
    resolve_workers,
    sample_forests_parallel,
)
from repro.parallel.shared_bank import (
    AttachedBank,
    BankHandle,
    SharedArrayBank,
    attach_bank,
    bank_manifest,
    load_array_bank,
    save_array_bank,
)
from repro.parallel.shared_graph import SharedCSRGraph

__all__ = [
    "AttachedBank",
    "BankHandle",
    "DEFAULT_CHUNK_SIZE",
    "SharedArrayBank",
    "SharedCSRGraph",
    "StageResult",
    "attach_bank",
    "bank_manifest",
    "load_array_bank",
    "parallel_estimate_stage",
    "plan_chunks",
    "resolve_workers",
    "sample_forests_parallel",
    "save_array_bank",
]
