r"""General named-array banks: shared memory and memmap carriers.

:mod:`repro.parallel.shared_graph` solved one instance of a recurring
problem — hand a worker process large read-only NumPy arrays without
pickling them — for the CSR arrays of a graph and only for
fork-inherited workers.  The serving tier needs the general form:

- **any** named collection of arrays (a forest bank's stacked roots,
  the five ``_BankOperators`` CSR operators, a graph's CSR triplet),
- attachable **by name** from a process that did *not* inherit the
  mapping (the query executor's long-lived workers outlive index
  refreshes, so they must be able to attach to segments created after
  they forked),
- with a **deferred-unlink** lifecycle: an atomic index swap must not
  unlink segments a worker still borrows — retirement is requested by
  the owner but honoured only after the last borrower drops,
- plus an **uncompressed on-disk twin** (one ``.npy`` per array and a
  JSON manifest) that :func:`numpy.load` can memory-map, so attaching
  to a multi-hundred-MB bank costs O(1) page-table work, not a copy.

Three cooperating pieces:

:class:`SharedArrayBank`
    Owner side.  Copies arrays into POSIX shared memory once and
    exposes a picklable :class:`BankHandle`.
:func:`attach_bank` / :class:`AttachedBank`
    Borrower side.  Maps the named segments read-only in O(1).
:func:`save_array_bank` / :func:`load_array_bank`
    The memmap-able directory format (``manifest.json`` +
    ``<name>.npy``), shared by ``ForestIndex.save_bank`` and the
    ``repro index`` CLI.
"""

from __future__ import annotations

import json
import os
import sys
import threading
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.exceptions import ConfigError

__all__ = [
    "BankHandle",
    "SharedArrayBank",
    "AttachedBank",
    "attach_bank",
    "save_array_bank",
    "load_array_bank",
    "bank_manifest",
]

#: On-disk manifest schema version (bump on incompatible changes).
#: v2 adds optional shard metadata to forest banks (a ``local_nodes``
#: array plus ``shard_*`` meta keys).  v3 adds the cache-aware layout
#: knobs: an optional ``node_order`` permutation array plus
#: ``bank_dtype`` / ``node_order`` / ``variance_mode`` meta keys, with
#: operator values optionally stored as float32/int32.  Both changes
#: are additive — readers default missing keys to the identity layout
#: and float64 — so v1/v2 banks stay readable; :func:`bank_manifest`
#: rejects only versions *newer* than this.
BANK_FORMAT_VERSION = 3

_MANIFEST = "manifest.json"


@dataclass(frozen=True)
class BankHandle:
    """Picklable description of a shared bank: segment names + layout.

    ``segments`` maps array name → ``(shm_name, shape, dtype_str)``;
    ``meta`` carries the owner's JSON-safe metadata.  A handle is all a
    worker needs to :func:`attach_bank` — no array bytes travel with
    the task that carries it.
    """

    segments: tuple[tuple[str, str, tuple[int, ...], str], ...]
    meta: tuple[tuple[str, object], ...]

    @property
    def meta_dict(self) -> dict:
        return dict(self.meta)

    @property
    def nbytes(self) -> int:
        """Total payload bytes described by the handle."""
        total = 0
        for _, _, shape, dtype in self.segments:
            total += int(np.dtype(dtype).itemsize * int(np.prod(shape)))
        return total


def _freeze_meta(meta: dict | None) -> tuple[tuple[str, object], ...]:
    return tuple(sorted((meta or {}).items()))


class SharedArrayBank:
    """Named read-only arrays in POSIX shared memory (owner side).

    The owner copies each array into its own segment exactly once;
    borrowers attach by name through the :attr:`handle`.  Lifecycle is
    refcounted so an index swap can *retire* the bank — requesting
    unlink — without yanking pages from under in-flight borrowers:

    - :meth:`acquire` / :meth:`release` bracket every dispatch that
      references the bank's segments;
    - :meth:`retire` marks the bank for unlink, which happens
      immediately if no borrower holds it and otherwise on the last
      :meth:`release`;
    - :meth:`close` force-unlinks (shutdown path).

    POSIX semantics keep already-attached mappings valid after the
    unlink, so retirement only ever affects *future* attaches — which
    is exactly the atomic-swap contract the index manager needs.
    """

    def __init__(self, arrays: dict[str, np.ndarray],
                 meta: dict | None = None):
        if not arrays:
            raise ConfigError("a shared bank needs at least one array")
        self._lock = threading.Lock()
        self._borrowers = 0
        self._retired = False
        self._unlinked = False
        self._blocks: list[shared_memory.SharedMemory] = []
        self.arrays: dict[str, np.ndarray] = {}
        segments = []
        try:
            for name, array in arrays.items():
                array = np.ascontiguousarray(array)
                block = _create_segment(max(array.nbytes, 1))
                view = np.ndarray(array.shape, dtype=array.dtype,
                                  buffer=block.buf)
                view[...] = array
                view.flags.writeable = False
                self._blocks.append(block)
                self.arrays[name] = view
                segments.append((name, block.name, tuple(array.shape),
                                 str(array.dtype)))
        except Exception:
            self.close()
            raise
        self.handle = BankHandle(segments=tuple(segments),
                                 meta=_freeze_meta(meta))
        self.meta = dict(meta or {})

    # -- borrower accounting -------------------------------------------
    def acquire(self) -> "SharedArrayBank":
        """Register one borrower; refuse if the bank is already gone."""
        with self._lock:
            if self._unlinked:
                raise ConfigError("shared bank has been unlinked")
            self._borrowers += 1
            return self

    def release(self) -> None:
        """Drop one borrower; unlink now if retired and last out."""
        with self._lock:
            self._borrowers = max(self._borrowers - 1, 0)
            ready = self._retired and self._borrowers == 0
        if ready:
            self._unlink()

    def retire(self) -> None:
        """Request unlink — honoured after the last borrower drops."""
        with self._lock:
            self._retired = True
            ready = self._borrowers == 0
        if ready:
            self._unlink()

    @property
    def borrowers(self) -> int:
        with self._lock:
            return self._borrowers

    @property
    def retired(self) -> bool:
        with self._lock:
            return self._retired

    @property
    def unlinked(self) -> bool:
        with self._lock:
            return self._unlinked

    # -- teardown ------------------------------------------------------
    def _unlink(self) -> None:
        with self._lock:
            if self._unlinked:
                return
            self._unlinked = True
        self.arrays = {}
        for block in self._blocks:
            try:
                block.unlink()
            except (FileNotFoundError, OSError):
                pass
            try:
                block.close()
            except BufferError:
                # a live view pins the buffer; the segment is unlinked,
                # so it vanishes once those references die
                pass
        self._blocks = []

    def close(self) -> None:
        """Force-unlink every segment regardless of borrowers."""
        self._unlink()

    def __enter__(self) -> "SharedArrayBank":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):
        try:
            self._unlink()
        except Exception:
            pass


#: ``SharedMemory(track=...)`` exists from Python 3.13; before that the
#: only way to attach untracked is to suppress ``register`` while the
#: attach runs.
_HAS_TRACK = sys.version_info >= (3, 13)

#: Pre-3.13 only: serializes every ``SharedMemory`` construction in
#: this process — attaches (which suppress ``register``) AND creates
#: (which must NOT land inside an attacher's suppression window, or the
#: new segment is never registered and a crash leaks it in
#: ``/dev/shm``).  Creators in *other* processes see their own
#: ``resource_tracker.register`` and are unaffected.
_tracker_lock = threading.Lock()


def _create_segment(size: int) -> shared_memory.SharedMemory:
    """Create a tracked segment, safe against concurrent attachers."""
    if _HAS_TRACK:
        return shared_memory.SharedMemory(create=True, size=size)
    with _tracker_lock:
        return shared_memory.SharedMemory(create=True, size=size)


def _attach_untracked(shm_name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker tracking.

    Attaching must not register the segment as if the attacher owned
    it: a forked worker shares the owner's tracker process, so *any*
    dereg/unlink pairing double-books the one cache entry, and an
    unrelated attacher's tracker tries to unlink the owner's segment
    at exit.  On 3.13+ ``track=False`` says exactly that; before,
    suppress the registration at its source, under the same lock
    creators take so no concurrent create goes unregistered.
    """
    if _HAS_TRACK:
        return shared_memory.SharedMemory(name=shm_name, track=False)
    with _tracker_lock:
        original = resource_tracker.register
        resource_tracker.register = lambda name, rtype: None
        try:
            return shared_memory.SharedMemory(name=shm_name)
        finally:
            resource_tracker.register = original


class AttachedBank:
    """Borrower-side view of a :class:`SharedArrayBank` (O(1) attach).

    Holds the :class:`multiprocessing.shared_memory.SharedMemory`
    objects alive for as long as the NumPy views are used; never
    unlinks (the owner does that).
    """

    def __init__(self, handle: BankHandle):
        self.handle = handle
        self.meta = handle.meta_dict
        self._blocks: list[shared_memory.SharedMemory] = []
        self.arrays: dict[str, np.ndarray] = {}
        try:
            for name, shm_name, shape, dtype in handle.segments:
                block = _attach_untracked(shm_name)
                view = np.ndarray(shape, dtype=np.dtype(dtype),
                                  buffer=block.buf)
                view.flags.writeable = False
                self._blocks.append(block)
                self.arrays[name] = view
        except Exception:
            self.close()
            raise

    def close(self) -> None:
        """Drop the mapping (idempotent; never unlinks)."""
        self.arrays = {}
        for block in self._blocks:
            try:
                block.close()
            except BufferError:
                pass
        self._blocks = []

    def __enter__(self) -> "AttachedBank":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass


def attach_bank(handle: BankHandle) -> AttachedBank:
    """Attach to the named segments of ``handle`` (borrower side)."""
    return AttachedBank(handle)


# ----------------------------------------------------------------------
# Memmap-able on-disk format
# ----------------------------------------------------------------------
def save_array_bank(path: str | os.PathLike, arrays: dict[str, np.ndarray],
                    meta: dict | None = None) -> None:
    """Write ``arrays`` as an uncompressed, memmap-able bank directory.

    Layout: ``<path>/manifest.json`` plus one plain ``.npy`` file per
    array.  Unlike ``savez_compressed``, a reader can
    ``np.load(..., mmap_mode="r")`` each member, so attaching costs
    O(1) regardless of bank size.
    """
    path = os.fspath(path)
    os.makedirs(path, exist_ok=True)
    manifest = {
        "format": "repro-array-bank",
        "version": BANK_FORMAT_VERSION,
        "meta": dict(meta or {}),
        "arrays": {},
    }
    for name, array in arrays.items():
        if "/" in name or name.startswith("."):
            raise ConfigError(f"bad array name {name!r}")
        array = np.ascontiguousarray(array)
        np.save(os.path.join(path, f"{name}.npy"), array)
        manifest["arrays"][name] = {
            "shape": list(array.shape),
            "dtype": str(array.dtype),
            "nbytes": int(array.nbytes),
        }
    with open(os.path.join(path, _MANIFEST), "w") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")


def bank_manifest(path: str | os.PathLike) -> dict:
    """Read and validate a bank directory's manifest (no array I/O)."""
    manifest_path = os.path.join(os.fspath(path), _MANIFEST)
    if not os.path.exists(manifest_path):
        raise ConfigError(f"{os.fspath(path)!r} is not an array-bank "
                          f"directory (no {_MANIFEST})")
    with open(manifest_path) as fh:
        manifest = json.load(fh)
    if manifest.get("format") != "repro-array-bank":
        raise ConfigError(f"{manifest_path!r} is not an array-bank manifest")
    if int(manifest.get("version", 0)) > BANK_FORMAT_VERSION:
        raise ConfigError(
            f"bank format version {manifest.get('version')} is newer than "
            f"this library supports ({BANK_FORMAT_VERSION})")
    return manifest


def load_array_bank(path: str | os.PathLike, *, mmap: bool = True,
                    ) -> tuple[dict[str, np.ndarray], dict]:
    """Load a bank directory; returns ``(arrays, meta)``.

    With ``mmap=True`` (default) every array is an O(1) read-only
    memory map; pages fault in lazily as queries touch them.
    """
    path = os.fspath(path)
    manifest = bank_manifest(path)
    arrays: dict[str, np.ndarray] = {}
    for name, spec in manifest["arrays"].items():
        member = os.path.join(path, f"{name}.npy")
        array = np.load(member, mmap_mode="r" if mmap else None)
        if (list(array.shape) != spec["shape"]
                or str(array.dtype) != spec["dtype"]):
            raise ConfigError(
                f"bank member {name!r} does not match its manifest entry")
        arrays[name] = array
    return arrays, dict(manifest.get("meta", {}))
