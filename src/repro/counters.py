"""Machine-independent work accounting shared by every sampling stage.

Wall-clock numbers depend on the host; the benchmark harness therefore
prefers *work counters* — how many walk steps were taken, how many
cycles were popped, how many forests were drawn, how many push
operations ran.  :class:`WorkCounters` is the one record threaded from
the samplers up through the query algorithms into
:class:`~repro.core.result.PPRResult.stats`, and merged across worker
processes by the parallel engine.

The flat-dict form uses a ``work_`` key prefix so the counters coexist
with the algorithms' historical stats keys (``num_forests``,
``forest_steps``, ...) and are picked up automatically by
:class:`~repro.bench.harness.QueryTimings`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["WorkCounters", "WORK_STATS_PREFIX"]

#: Prefix used when flattening counters into a stats dict.
WORK_STATS_PREFIX = "work_"


@dataclass
class WorkCounters:
    """Additive work-done record.

    Attributes
    ----------
    walk_steps:
        Random-walk steps (arrow draws): forest-sampler draws plus
        plain α-walk steps.
    cycle_pops:
        Arrows redrawn because a cycle was popped (equivalently, walk
        visits erased by loop erasure — both equal ``steps − n`` per
        forest, see :attr:`~repro.forests.forest.RootedForest.num_pops`).
    forests_sampled:
        Rooted spanning forests drawn.
    pushes:
        Deterministic push operations (forward/backward/power) —
        total frontier memberships across sweeps, identical for every
        push backend.
    push_sweeps:
        Synchronous frontier sweeps executed by the push stage;
        ``pushes / push_sweeps`` is the mean frontier size.
    repair_fresh_steps:
        New arrow draws made while incrementally repairing recorded
        forests after a graph mutation — the *paid* part of a repair,
        directly comparable to the ``walk_steps`` a full rebuild would
        have cost.
    repair_replayed_steps:
        Recorded arrows re-read during repair (no RNG, no sampling
        work; a memory pass over the surviving stacks).
    repair_dirty_nodes:
        Node records invalidated by mutations, summed over repaired
        forests.
    cv_fits:
        Control-variate coefficient fits: one per estimate batch that
        regressed the basic estimator against its known-expectation
        variate (``variance_mode="control_variate"``).
    strata:
        Stratified arrow groups formed by the coupled batch sampler —
        one per (node, popping round) whose active layers drew their
        first-arrow uniforms from a common Latin-hypercube grid
        (``variance_mode="stratified"``).
    """

    walk_steps: int = 0
    cycle_pops: int = 0
    forests_sampled: int = 0
    pushes: int = 0
    push_sweeps: int = 0
    repair_fresh_steps: int = 0
    repair_replayed_steps: int = 0
    repair_dirty_nodes: int = 0
    cv_fits: int = 0
    strata: int = 0

    # ------------------------------------------------------------------
    def merge(self, other) -> "WorkCounters":
        """Add ``other`` into ``self`` (in place) and return ``self``.

        ``other`` may be another :class:`WorkCounters` or any mapping in
        :meth:`as_dict` / :meth:`as_stats` form (unknown keys are
        ignored, missing keys count as zero), so scheduler batches can
        fold plain stats dicts straight into an aggregate.  The merge
        itself is not synchronised — callers aggregating from several
        threads (e.g. the service metrics registry) must hold their own
        lock around it.
        """
        if isinstance(other, WorkCounters):
            values = other.as_dict()
        else:
            values = {spec.name: int(other.get(
                spec.name, other.get(WORK_STATS_PREFIX + spec.name, 0)))
                for spec in fields(self)}
        for spec in fields(self):
            setattr(self, spec.name,
                    getattr(self, spec.name) + values.get(spec.name, 0))
        return self

    def __add__(self, other: "WorkCounters") -> "WorkCounters":
        return WorkCounters(*(getattr(self, f.name) + getattr(other, f.name)
                              for f in fields(self)))

    def record_forest(self, forest) -> None:
        """Account for one sampled :class:`~repro.forests.forest.RootedForest`."""
        self.forests_sampled += 1
        self.walk_steps += int(forest.num_steps)
        self.cycle_pops += int(forest.num_pops)

    def record_push(self, push) -> None:
        """Account for one :class:`~repro.push.forward.PushResult`."""
        self.pushes += int(push.num_pushes)
        self.push_sweeps += int(push.num_sweeps)

    # ------------------------------------------------------------------
    def as_dict(self) -> dict[str, int]:
        """Plain ``{field: value}`` mapping."""
        return {spec.name: int(getattr(self, spec.name))
                for spec in fields(self)}

    def snapshot_dict(self) -> dict[str, int]:
        """Point-in-time copy of the counters plus the :attr:`total`.

        The returned dict is detached from the live record — later
        :meth:`merge` / ``record_*`` calls do not mutate it — which is
        what metrics endpoints need when the counters keep advancing
        under them.
        """
        snapshot = self.as_dict()
        snapshot["total"] = sum(snapshot.values())
        return snapshot

    def as_stats(self) -> dict[str, int]:
        """Flat stats entries, keys prefixed with :data:`WORK_STATS_PREFIX`."""
        return {WORK_STATS_PREFIX + key: value
                for key, value in self.as_dict().items()}

    @classmethod
    def from_stats(cls, stats: dict) -> "WorkCounters":
        """Rebuild counters from a stats dict written by :meth:`as_stats`.

        Missing keys default to zero, so results produced before the
        counters existed still parse.
        """
        return cls(**{spec.name: int(stats.get(WORK_STATS_PREFIX + spec.name, 0))
                      for spec in fields(cls)})

    @property
    def total(self) -> int:
        """Sum of all counters — a single scalar "work done" figure."""
        return sum(self.as_dict().values())
