"""High-level dispatch: one call, any algorithm.

:func:`single_source` / :func:`single_target` are the public entry
points — pick a ``method`` string, pass configuration either as a
prebuilt :class:`~repro.core.config.PPRConfig` or as keyword
overrides, and optionally hand over a prebuilt index for the ``+``
variants.
"""

from __future__ import annotations

import repro.core.single_source as source_module
import repro.core.single_target as target_module
from repro.core.config import PPRConfig
from repro.core.result import PPRResult
from repro.exceptions import ConfigError
from repro.graph.csr import Graph

__all__ = ["single_source", "single_target",
           "SINGLE_SOURCE_METHODS", "SINGLE_TARGET_METHODS"]

#: Online single-source algorithms by name.
SINGLE_SOURCE_METHODS = {
    "fora": source_module.fora,
    "foral": source_module.foral,
    "foralv": source_module.foralv,
    "speedppr": source_module.speedppr,
    "speedl": source_module.speedl,
    "speedlv": source_module.speedlv,
}

#: Indexed single-source algorithms by name (need ``index=``).
SINGLE_SOURCE_INDEXED_METHODS = {
    "fora+": source_module.fora_plus,
    "speedppr+": source_module.speedppr_plus,
    "foralv+": source_module.foralv_plus,
    "speedlv+": source_module.speedlv_plus,
}

#: Single-target algorithms by name.
SINGLE_TARGET_METHODS = {
    "back": target_module.back,
    "rback": target_module.rback,
    "backl": target_module.backl,
    "backlv": target_module.backlv,
}


def _build_config(config: PPRConfig | None, overrides: dict) -> PPRConfig:
    if config is None:
        return PPRConfig(**overrides)
    if overrides:
        return config.with_overrides(**overrides)
    return config


def single_source(graph: Graph, source: int, *, method: str = "speedlv",
                  config: PPRConfig | None = None, index=None,
                  **overrides) -> PPRResult:
    """Estimate ``π(source, v)`` for every node ``v``.

    Parameters
    ----------
    method:
        One of ``fora, foral, foralv, speedppr, speedl, speedlv`` or an
        indexed variant ``fora+, speedppr+, foralv+, speedlv+`` (which
        require ``index``).
    config:
        A :class:`PPRConfig`; keyword ``overrides`` (``alpha=``,
        ``epsilon=``, ``seed=``, ``workers=`` ...) are applied on top
        of it or of the defaults.  ``workers`` fans the forest
        Monte-Carlo stage out over that many processes via
        :mod:`repro.parallel.engine`; with a fixed ``seed`` the
        estimates are bit-identical for every worker count, so it is a
        pure throughput knob.
    index:
        Prebuilt :class:`~repro.montecarlo.walk_index.WalkIndex` /
        :class:`~repro.montecarlo.forest_index.ForestIndex` for the
        ``+`` methods.

    Examples
    --------
    >>> import repro
    >>> g = repro.load_dataset("youtube", scale=0.1)
    >>> res = repro.single_source(g, 0, method="speedlv", alpha=0.01,
    ...                           budget_scale=0.01, seed=1)
    >>> abs(res.total_mass - 1.0) < 0.2
    True
    """
    key = method.lower()
    resolved = _build_config(config, overrides)
    if key in SINGLE_SOURCE_METHODS:
        if index is not None:
            raise ConfigError(
                f"method {method!r} is an online algorithm; drop index= "
                f"or pick {key}+")
        return SINGLE_SOURCE_METHODS[key](graph, source, resolved)
    if key in SINGLE_SOURCE_INDEXED_METHODS:
        if index is None:
            raise ConfigError(f"method {method!r} requires index=")
        return SINGLE_SOURCE_INDEXED_METHODS[key](graph, source, index,
                                                  resolved)
    raise ConfigError(
        f"unknown single-source method {method!r}; choose from "
        f"{sorted(SINGLE_SOURCE_METHODS) + sorted(SINGLE_SOURCE_INDEXED_METHODS)}")


def single_target(graph: Graph, target: int, *, method: str = "backlv",
                  config: PPRConfig | None = None, index=None,
                  **overrides) -> PPRResult:
    """Estimate ``π(v, target)`` for every node ``v``.

    ``method`` is one of ``back, rback, backl, backlv`` or
    ``backlv+`` (requires ``index``); see :func:`single_source` for the
    configuration contract.
    """
    key = method.lower()
    resolved = _build_config(config, overrides)
    if key in SINGLE_TARGET_METHODS:
        if index is not None:
            raise ConfigError(
                f"method {method!r} is an online algorithm; drop index=")
        return SINGLE_TARGET_METHODS[key](graph, target, resolved)
    if key == "backlv+":
        if index is None:
            raise ConfigError("method 'backlv+' requires index=")
        return target_module.backlv_plus(graph, target, index, resolved)
    raise ConfigError(
        f"unknown single-target method {method!r}; choose from "
        f"{sorted(SINGLE_TARGET_METHODS) + ['backlv+']}")
