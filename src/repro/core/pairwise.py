r"""Single-pair PPR queries: estimate one value ``π(s, t)``.

The bidirectional recipe (in the spirit of BiPPR [33], rebuilt on
spanning forests): run a backward push from the *target* to get
reserve/residual with the invariant (Eq. 7)

.. math:: \pi(s, t) = q(s) + \sum_u \pi(s, u)\, r(u),

then estimate the remaining sum with forests — it is exactly the
single-target forest estimator *read at the single entry* ``s``:
``E[r(root(s))]`` (basic) or the degree-weighted tree average
(improved, undirected only).  Because only one entry is read, far
fewer forests suffice than for a full vector at equal per-entry
accuracy.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.config import PPRConfig
from repro.exceptions import ConfigError
from repro.forests.sampling import sample_forest
from repro.graph.csr import Graph
from repro.push.backward import backward_push
from repro.rng import ensure_rng

__all__ = ["PairEstimate", "pair_ppr", "pair_ppr_bippr"]


class PairEstimate(float):
    """A float subclass carrying the estimate's provenance in ``stats``."""

    def __new__(cls, value: float, stats: dict):
        instance = super().__new__(cls, value)
        instance.stats = stats
        return instance


def pair_ppr(graph: Graph, source: int, target: int, *,
             config: PPRConfig | None = None,
             num_forests: int | None = None,
             **overrides) -> PairEstimate:
    """Estimate the single value ``π(source, target)``.

    Parameters
    ----------
    num_forests:
        Forest count for the Monte-Carlo half; defaults to
        ``⌈r_max·W⌉`` like the full-vector algorithms.
    overrides:
        ``PPRConfig`` field overrides (``alpha=``, ``seed=``, ...).

    Returns
    -------
    PairEstimate
        A float with ``.stats`` (push/forest counters) attached.

    Examples
    --------
    >>> import repro
    >>> from repro.core.pairwise import pair_ppr
    >>> g = repro.load_dataset("youtube", scale=0.05)
    >>> value = pair_ppr(g, 0, 1, alpha=0.1, seed=3, budget_scale=0.05)
    >>> 0.0 <= float(value) <= 1.0
    True
    """
    for node, label in ((source, "source"), (target, "target")):
        if not 0 <= node < graph.num_nodes:
            raise ConfigError(f"{label} {node} out of range")
    config = (config or PPRConfig())
    if overrides:
        config = config.with_overrides(**overrides)
    config = config.resolve(graph)
    rng = ensure_rng(config.seed)
    improved = not graph.directed

    pilot = sample_forest(graph, config.alpha, rng=rng,
                          method=config.sampler)
    tau_hat = max(pilot.num_steps, 1)
    budget = config.walk_budget(graph)
    r_max = config.r_max
    if r_max is None:
        mean_degree = max(graph.average_degree, 1.0)
        r_max = float(np.clip(
            np.sqrt(mean_degree / (config.alpha * budget * tau_hat)),
            config.epsilon * config.mu, 1.0))

    t0 = time.perf_counter()
    push = backward_push(graph, target, config.alpha, r_max,
                         backend=config.push_backend)
    t1 = time.perf_counter()

    if num_forests is None:
        num_forests = config.num_forests(graph, r_max)
    degrees = graph.degrees
    residual = push.residual
    total = 0.0
    steps = 0
    drawn = 0
    forest = pilot
    while True:
        if improved:
            component = forest.component_of(source)
            mass = degrees[component].sum()
            if mass > 0:
                total += float(
                    (residual[component] * degrees[component]).sum() / mass)
            else:
                total += float(residual[source])
        else:
            total += float(residual[forest.roots[source]])
        steps += forest.num_steps
        drawn += 1
        if drawn >= num_forests:
            break
        forest = sample_forest(graph, config.alpha, rng=rng,
                               method=config.sampler)
    t2 = time.perf_counter()

    estimate = float(push.reserve[source]) + total / drawn
    stats = {"r_max": r_max, "num_pushes": push.num_pushes,
             "push_work": push.work, "push_seconds": t1 - t0,
             "mc_seconds": t2 - t1, "num_forests": drawn,
             "forest_steps": steps,
             "estimator": "improved" if improved else "basic"}
    return PairEstimate(estimate, stats)


def pair_ppr_bippr(graph: Graph, source: int, target: int, *,
                   config: PPRConfig | None = None,
                   num_walks: int | None = None,
                   **overrides) -> PairEstimate:
    r"""BiPPR-style baseline for ``π(source, target)`` ([33]).

    Same backward-push front-end as :func:`pair_ppr`, but the residual
    term ``Σ_v π(s, v) r(v)`` is estimated with forward α-walks from
    the source: a walk's endpoint ``X`` satisfies
    ``E[r(X)] = Σ_v π(s, v) r(v)`` exactly.  Provided as the
    walk-based comparator to the forest-based estimator — the pair
    ablation in the benchmarks contrasts their α-sensitivity.
    """
    from repro.montecarlo.walks import simulate_alpha_walks

    for node, label in ((source, "source"), (target, "target")):
        if not 0 <= node < graph.num_nodes:
            raise ConfigError(f"{label} {node} out of range")
    config = (config or PPRConfig())
    if overrides:
        config = config.with_overrides(**overrides)
    config = config.resolve(graph)
    rng = ensure_rng(config.seed)

    budget = config.walk_budget(graph)
    r_max = config.r_max
    if r_max is None:
        # BiPPR balance: push cost d̄/(α r) vs walk cost r·W/α
        r_max = float(np.clip(
            np.sqrt(max(graph.average_degree, 1.0) / budget),
            config.epsilon * config.mu, 1.0))

    t0 = time.perf_counter()
    push = backward_push(graph, target, config.alpha, r_max,
                         backend=config.push_backend)
    t1 = time.perf_counter()

    if num_walks is None:
        num_walks = int(np.clip(np.ceil(r_max * budget), 1,
                                config.max_walks))
    starts = np.full(num_walks, source, dtype=np.int64)
    batch = simulate_alpha_walks(graph, starts, config.alpha, rng=rng)
    mc = float(push.residual[batch.endpoints].mean())
    t2 = time.perf_counter()

    stats = {"r_max": r_max, "num_pushes": push.num_pushes,
             "push_work": push.work, "push_seconds": t1 - t0,
             "mc_seconds": t2 - t1, "num_walks": num_walks,
             "walk_steps": batch.total_steps, "estimator": "bippr"}
    return PairEstimate(float(push.reserve[source]) + mc, stats)
