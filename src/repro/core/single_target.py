r"""Single-target PPR algorithms (§6): BACK, RBACK, BACKL, BACKLV.

The baselines run backward push alone to the additive threshold
``r_max = ε·μ`` (so every ``π(v,t) ≥ μ`` carries relative error
``≤ ε``).  The paper's two-stage algorithms stop the push early at a
balanced ``r_max`` and estimate the leftover (Eq. 7)
``Σ_u π(v, u) r(u)`` with spanning forests:

- **BACKL** (basic): each node inherits its tree root's residual —
  ``a_v = r(root(v))``;
- **BACKLV** (improved, Theorem 6.1's relative error guarantee):
  degree-weighted tree average —
  ``a_v = Σ_{u∈C(v)} r(u) d_u / Σ_{u∈C(v)} d_u``.

Default ``r_max`` for the two-stage methods balances push cost
``π(t)·c_push/(α·r)`` against sampling cost ``r·W·τ``:
``r_max = √(d̄/(α·W·τ̂))`` with τ̂ from a pilot forest (reused as the
first sample), floored at the baseline's ``ε·μ`` so the two-stage
method never pushes *harder* than BACK.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.config import PPRConfig
from repro.core.result import PPRResult
from repro.counters import WorkCounters
from repro.exceptions import ConfigError
from repro.forests.estimators import (CVAccumulator, accumulate_cv_estimates,
                                      accumulate_estimates, cv_combine)
from repro.forests.sampling import sample_forest
from repro.graph.csr import Graph
from repro.montecarlo.forest_index import ForestIndex
from repro.parallel.engine import parallel_estimate_stage
from repro.push.backward import backward_push, randomized_backward_push
from repro.rng import ensure_rng

__all__ = ["back", "rback", "backl", "backlv", "backlv_plus"]


def _prepare(graph: Graph, target: int,
             config: PPRConfig | None) -> tuple[PPRConfig, np.random.Generator]:
    if not 0 <= target < graph.num_nodes:
        raise ConfigError(f"target {target} out of range [0, {graph.num_nodes})")
    config = (config or PPRConfig()).resolve(graph)
    return config, ensure_rng(config.seed)


def _baseline_r_max(config: PPRConfig) -> float:
    """``ε·μ``: additive precision that implies the relative guarantee."""
    return config.epsilon * config.mu


def _push_counters(push) -> WorkCounters:
    """Fresh :class:`WorkCounters` seeded with one push stage's work."""
    counters = WorkCounters()
    counters.record_push(push)
    return counters


def _finish(graph: Graph, target: int, method: str, config: PPRConfig,
            estimates: np.ndarray, stats: dict) -> PPRResult:
    return PPRResult(estimates=estimates, kind="target", query_node=target,
                     method=method, alpha=config.alpha,
                     epsilon=config.epsilon, stats=stats)


def back(graph: Graph, target: int,
         config: PPRConfig | None = None) -> PPRResult:
    """BACK [3]: pure backward push to additive error ``ε·μ``.

    ``budget_scale < 1`` relaxes the threshold proportionally (the
    same uniform budget knob the sampling algorithms use).
    """
    config, _ = _prepare(graph, target, config)
    r_max = config.r_max
    if r_max is None:
        r_max = _baseline_r_max(config) / config.budget_scale
    t0 = time.perf_counter()
    push = backward_push(graph, target, config.alpha, r_max,
                         backend=config.push_backend)
    t1 = time.perf_counter()
    stats = {"r_max": r_max, "num_pushes": push.num_pushes,
             "push_work": push.work, "push_seconds": t1 - t0,
             "residual_mass": push.residual_mass,
             **_push_counters(push).as_stats()}
    return _finish(graph, target, "back", config, push.reserve, stats)


def rback(graph: Graph, target: int,
          config: PPRConfig | None = None) -> PPRResult:
    """RBACK [43]: randomized backward push (probabilistic increment
    rounding) to the same threshold as :func:`back`."""
    config, rng = _prepare(graph, target, config)
    r_max = config.r_max
    if r_max is None:
        r_max = _baseline_r_max(config) / config.budget_scale
    t0 = time.perf_counter()
    push = randomized_backward_push(graph, target, config.alpha, r_max,
                                    rng=rng)
    t1 = time.perf_counter()
    stats = {"r_max": r_max, "num_pushes": push.num_pushes,
             "push_work": push.work, "push_seconds": t1 - t0,
             "residual_mass": push.residual_mass,
             **_push_counters(push).as_stats()}
    return _finish(graph, target, "rback", config, push.reserve, stats)


def _two_stage_r_max(graph: Graph, target: int, config: PPRConfig, rng):
    """Balanced ``r_max`` for BACKL/BACKLV (pilot-forest τ̂).

    Backward-push cost scales with the target's total incoming PPR
    mass ``S_t = Σ_v π(v, t)`` — approximated by its α→0 limit
    ``n·d_t / Σ_u d_u`` — times ``d̄ / (α·r_max)``; the forest stage
    costs ``r_max·W·τ̂``.  Balancing gives
    ``r_max = √(S_t·d̄ / (α·W·τ̂))``, floored at the BACK baseline's
    threshold so the two-stage method never pushes *deeper* than BACK.
    """
    pilot = sample_forest(graph, config.alpha, rng=rng,
                          method=config.sampler)
    tau_hat = max(pilot.num_steps, 1)
    budget = config.walk_budget(graph)
    mean_degree = max(graph.average_degree, 1.0)
    target_mass = max(
        graph.num_nodes * float(graph.degrees[target])
        / max(graph.total_weight, 1.0), 1.0)
    r_max = float(np.sqrt(target_mass * mean_degree
                          / (config.alpha * budget * tau_hat)))
    r_max = max(r_max, _baseline_r_max(config) / config.budget_scale)
    return float(np.clip(r_max, 1e-9, 1.0)), pilot


def _backl_family(graph: Graph, target: int, config: PPRConfig | None,
                  *, improved: bool, method: str) -> PPRResult:
    if improved and graph.directed:
        raise ConfigError(
            f"{method} uses the variance-reduced estimator, which is only "
            f"unbiased on undirected graphs; use backl instead")
    if (config is not None and config.variance_mode == "control_variate"
            and graph.directed):
        raise ConfigError(
            f"{method}: variance_mode='control_variate' relies on the "
            f"degree vector being stationary and is only unbiased on "
            f"undirected graphs")
    config, rng = _prepare(graph, target, config)
    pilot = None
    r_max = config.r_max
    if r_max is None:
        r_max, pilot = _two_stage_r_max(graph, target, config, rng)
    t0 = time.perf_counter()
    push = backward_push(graph, target, config.alpha, r_max,
                         backend=config.push_backend)
    t1 = time.perf_counter()
    # ω is already discounted by config.variance_gain for modes with a
    # measured variance reduction — the walk_steps cut of this PR
    omega = config.num_forests(graph, r_max)
    counters = _push_counters(push)
    mode = config.variance_mode
    extra_stats: dict = {"variance_mode": mode}
    if mode == "control_variate":
        acc = CVAccumulator.zeros(graph.num_nodes)
        if pilot is not None:
            acc.merge(accumulate_cv_estimates(
                [pilot], push.residual, graph.degrees, kind="target",
                counters=counters))
        stage = parallel_estimate_stage(
            graph, config.alpha, max(omega - acc.drawn, 0), push.residual,
            kind="target", improved=False, rng=rng, workers=config.workers,
            method=config.sampler, variance_mode=mode)
        acc.merge(stage.cv_accumulator())
        counters.merge(stage.counters)
        mean, beta = cv_combine(acc, graph.degrees, counters=counters)
        drawn = acc.drawn
        extra_stats["cv_beta"] = beta
    else:
        accumulated = np.zeros(graph.num_nodes)
        drawn = 0
        if pilot is not None:
            pilot_sums, _, pilot_drawn = accumulate_estimates(
                [pilot], push.residual, graph.degrees, kind="target",
                improved=improved, counters=counters)
            accumulated += pilot_sums
            drawn += pilot_drawn
        stage = parallel_estimate_stage(
            graph, config.alpha, max(omega - drawn, 0), push.residual,
            kind="target", improved=improved, rng=rng,
            workers=config.workers, method=config.sampler,
            variance_mode=mode)
        accumulated += stage.sums
        drawn += stage.drawn
        counters.merge(stage.counters)
        mean = accumulated / max(drawn, 1)
    t2 = time.perf_counter()
    stats = {"r_max": r_max, "num_pushes": push.num_pushes,
             "push_work": push.work, "push_seconds": t1 - t0,
             "mc_seconds": t2 - t1, "num_forests": drawn,
             "forest_steps": counters.walk_steps,
             "cycle_pops": counters.cycle_pops, "omega": omega,
             "mc_workers": stage.workers_used,
             "mc_chunks": stage.num_chunks, **extra_stats,
             **counters.as_stats()}
    return _finish(graph, target, method, config,
                   push.reserve + mean, stats)


def backl(graph: Graph, target: int,
          config: PPRConfig | None = None) -> PPRResult:
    """BACKL (Algorithm 5, basic estimator)."""
    return _backl_family(graph, target, config, improved=False,
                         method="backl")


def backlv(graph: Graph, target: int,
           config: PPRConfig | None = None) -> PPRResult:
    """BACKLV (Algorithm 5, improved estimator) — the paper's best
    single-target algorithm (Theorem 6.1 relative error guarantee)."""
    return _backl_family(graph, target, config, improved=True,
                         method="backlv")


def backlv_plus(graph: Graph, target: int, index: ForestIndex,
                config: PPRConfig | None = None) -> PPRResult:
    """BACKLV with a prebuilt forest index instead of online sampling.

    Not benchmarked in the paper but an immediate corollary of §5.3;
    provided for applications issuing many target queries.
    """
    config, rng = _prepare(graph, target, config)
    if not isinstance(index, ForestIndex):
        raise ConfigError("backlv_plus requires a ForestIndex")
    if index.graph is not graph or not np.isclose(index.alpha, config.alpha):
        raise ConfigError("index does not match this graph/alpha")
    r_max = config.r_max
    if r_max is None:
        r_max, _ = _two_stage_r_max(graph, target, config, rng)
    t0 = time.perf_counter()
    push = backward_push(graph, target, config.alpha, r_max,
                         backend=config.push_backend)
    t1 = time.perf_counter()
    mc = index.estimate_target(push.residual, improved=True)
    t2 = time.perf_counter()
    stats = {"r_max": r_max, "num_pushes": push.num_pushes,
             "push_work": push.work, "push_seconds": t1 - t0,
             "mc_seconds": t2 - t1, "index_forests": index.num_forests,
             **_push_counters(push).as_stats()}
    return _finish(graph, target, "backlv+", config, push.reserve + mc,
                   stats)
