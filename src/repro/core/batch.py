r"""Batch query solvers: amortise forests across many queries.

The crucial structural fact of the forest approach — the sampled
forests do not depend on the query node — means a bank of forests can
serve *every* source (or target) in a workload; only the cheap push
stage is per-query.  This is §5.3's index idea turned into a
batch-processing API:

- :class:`BatchSourceSolver` — many single-source queries, one forest
  bank (FORALV+/SPEEDLV+ semantics with an explicit lifecycle);
- :class:`BatchTargetSolver` — the single-target analogue (not in the
  paper, but an immediate corollary).

Both are thin, explicit wrappers over
:class:`~repro.montecarlo.forest_index.ForestIndex` plus the
appropriate push, returning ordinary
:class:`~repro.core.result.PPRResult` objects.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.config import PPRConfig
from repro.core.result import PPRResult
from repro.exceptions import ConfigError
from repro.graph.csr import Graph
from repro.montecarlo.forest_index import ForestIndex
from repro.push.backward import backward_push
from repro.push.forward import balanced_forward_push
from repro.rng import ensure_rng

__all__ = ["BatchSourceSolver", "BatchTargetSolver"]


class _BatchSolverBase:
    def __init__(self, graph: Graph, *, config: PPRConfig | None = None,
                 num_forests: int | None = None, **overrides):
        config = config or PPRConfig()
        if overrides:
            config = config.with_overrides(**overrides)
        self.config = config.resolve(graph)
        self.graph = graph
        self._improved = not graph.directed
        if num_forests is None:
            num_forests = ForestIndex.recommended_size(
                graph, self.config.epsilon)
        self.index = ForestIndex.build(graph, self.config.alpha,
                                       num_forests,
                                       rng=ensure_rng(self.config.seed),
                                       method=self.config.sampler)

    @property
    def num_forests(self) -> int:
        """Size of the shared forest bank."""
        return self.index.num_forests

    def _default_r_max(self) -> float:
        budget = self.config.walk_budget(self.graph)
        tau_hat = max(self.index.build_steps / self.index.num_forests, 1.0)
        mean_degree = max(self.graph.average_degree, 1.0)
        return float(np.clip(
            np.sqrt(mean_degree / (self.config.alpha * budget * tau_hat)),
            1e-9, 1.0))


class BatchSourceSolver(_BatchSolverBase):
    """Answer many single-source queries against one forest bank.

    Examples
    --------
    >>> import repro
    >>> from repro.core.batch import BatchSourceSolver
    >>> g = repro.load_dataset("youtube", scale=0.05)
    >>> solver = BatchSourceSolver(g, alpha=0.05, seed=1, budget_scale=0.05)
    >>> results = [solver.query(s) for s in (0, 1, 2)]
    >>> all(abs(r.total_mass - 1.0) < 0.3 for r in results)
    True
    """

    def query(self, source: int) -> PPRResult:
        """``π(source, ·)`` via balanced forward push + the shared bank."""
        if not 0 <= source < self.graph.num_nodes:
            raise ConfigError(f"source {source} out of range")
        r_max = self.config.r_max or self._default_r_max()
        t0 = time.perf_counter()
        push = balanced_forward_push(self.graph, source, self.config.alpha,
                                     r_max,
                                     backend=self.config.push_backend)
        t1 = time.perf_counter()
        mc = self.index.estimate_source(push.residual,
                                        improved=self._improved)
        t2 = time.perf_counter()
        stats = {"r_max": r_max, "num_pushes": push.num_pushes,
                 "push_work": push.work, "push_seconds": t1 - t0,
                 "mc_seconds": t2 - t1,
                 "index_forests": self.index.num_forests}
        return PPRResult(estimates=push.reserve + mc, kind="source",
                         query_node=source, method="batch-source",
                         alpha=self.config.alpha,
                         epsilon=self.config.epsilon, stats=stats)


class BatchTargetSolver(_BatchSolverBase):
    """Answer many single-target queries against one forest bank."""

    def query(self, target: int) -> PPRResult:
        """``π(·, target)`` via backward push + the shared bank."""
        if not 0 <= target < self.graph.num_nodes:
            raise ConfigError(f"target {target} out of range")
        r_max = self.config.r_max or max(
            self._default_r_max(),
            self.config.epsilon * self.config.mu / self.config.budget_scale)
        t0 = time.perf_counter()
        push = backward_push(self.graph, target, self.config.alpha, r_max,
                             backend=self.config.push_backend)
        t1 = time.perf_counter()
        mc = self.index.estimate_target(push.residual,
                                        improved=self._improved)
        t2 = time.perf_counter()
        stats = {"r_max": r_max, "num_pushes": push.num_pushes,
                 "push_work": push.work, "push_seconds": t1 - t0,
                 "mc_seconds": t2 - t1,
                 "index_forests": self.index.num_forests}
        return PPRResult(estimates=push.reserve + mc, kind="target",
                         query_node=target, method="batch-target",
                         alpha=self.config.alpha,
                         epsilon=self.config.epsilon, stats=stats)
