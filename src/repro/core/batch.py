r"""Batch query solvers: amortise forests across many queries.

The crucial structural fact of the forest approach — the sampled
forests do not depend on the query node — means a bank of forests can
serve *every* source (or target) in a workload; only the cheap push
stage is per-query.  This is §5.3's index idea turned into a
batch-processing API:

- :class:`BatchSourceSolver` — many single-source queries, one forest
  bank (FORALV+/SPEEDLV+ semantics with an explicit lifecycle);
- :class:`BatchTargetSolver` — the single-target analogue (not in the
  paper, but an immediate corollary).

Both are thin, explicit wrappers over
:class:`~repro.montecarlo.forest_index.ForestIndex` plus the
appropriate push, returning ordinary
:class:`~repro.core.result.PPRResult` objects.

Lifecycle: a solver may be constructed around a pre-built, shared
``index=`` (the serving layer's :class:`~repro.service.IndexManager`
does this so one bank backs many solvers), used as a context manager,
and observed via :meth:`~_BatchSolverBase.stats` — bank size, queries
served, cumulative push work.  :meth:`~_BatchSolverBase.close`
releases an owned bank; a solver that merely borrowed an injected
index leaves it untouched.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.core.config import PPRConfig
from repro.core.result import PairResult, PPRResult
from repro.counters import WorkCounters
from repro.exceptions import ConfigError
from repro.forests.estimators import weighted_combine
from repro.graph.csr import Graph
from repro.montecarlo.forest_index import ForestIndex
from repro.push.backward import backward_push
from repro.shard.partial import ShardPartial
from repro.push.forward import balanced_forward_push
from repro.rng import ensure_rng

__all__ = [
    "BatchSourceSolver",
    "BatchTargetSolver",
    "BatchMultiSeedSolver",
    "BatchPairSolver",
    "normalize_seed_set",
]


def normalize_seed_set(seeds, weights, num_nodes: int) -> tuple[tuple[int, ...],
                                                                tuple[float, ...]]:
    """Validate and canonicalise one ``(seeds, weights)`` item.

    Seeds become a tuple of in-range ints; weights default to uniform
    and are normalised to sum to 1 (deterministically: ``w / w.sum()``),
    so every layer — solver, cache key, HTTP echo — agrees on one
    canonical personalization vector.
    """
    seeds = tuple(int(seed) for seed in seeds)
    if not seeds:
        raise ConfigError("seed set must not be empty")
    for seed in seeds:
        if not 0 <= seed < num_nodes:
            raise ConfigError(f"seed {seed} out of range")
    if weights is None:
        weights = np.full(len(seeds), 1.0 / len(seeds))
    else:
        weights = np.asarray(list(weights), dtype=np.float64)
        if weights.shape != (len(seeds),):
            raise ConfigError(
                f"need one weight per seed, got {weights.size} weights "
                f"for {len(seeds)} seeds")
        if not np.all(np.isfinite(weights)) or np.any(weights < 0):
            raise ConfigError("weights must be finite and non-negative")
        total = float(weights.sum())
        if total <= 0:
            raise ConfigError("weights must have positive sum")
        weights = weights / total
    return seeds, tuple(float(weight) for weight in weights)


class _BatchSolverBase:
    def __init__(self, graph: Graph, *, config: PPRConfig | None = None,
                 num_forests: int | None = None,
                 index: ForestIndex | None = None, **overrides):
        config = config or PPRConfig()
        if overrides:
            config = config.with_overrides(**overrides)
        self.config = config.resolve(graph)
        self.graph = graph
        self._improved = not graph.directed
        if index is not None:
            if index.graph.num_nodes != graph.num_nodes:
                raise ConfigError(
                    f"injected index was built for "
                    f"{index.graph.num_nodes} nodes, graph has "
                    f"{graph.num_nodes}")
            if abs(index.alpha - self.config.alpha) > 1e-12:
                raise ConfigError(
                    f"injected index was built for alpha={index.alpha}, "
                    f"config says alpha={self.config.alpha}")
            self.index = index
            self._owns_index = False
        else:
            if num_forests is None:
                num_forests = ForestIndex.recommended_size(
                    graph, self.config.epsilon)
            self.index = ForestIndex.build(graph, self.config.alpha,
                                           num_forests,
                                           rng=ensure_rng(self.config.seed),
                                           method=self.config.sampler)
            self._owns_index = True
        self._closed = False
        self._queries_served = 0
        self._push_work = 0
        self._lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def close(self) -> None:
        """Release the forest bank (if owned) and refuse further queries.

        Idempotent.  A solver built around an injected ``index=`` only
        drops its reference — the shared bank stays valid for every
        other solver borrowing it.
        """
        if self._closed:
            return
        self._closed = True
        if self._owns_index:
            self.index.forests.clear()
        self.index = None  # type: ignore[assignment]

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    def stats(self) -> dict:
        """Point-in-time lifecycle snapshot for monitoring.

        Keys: ``num_forests`` / ``index_size_bytes`` (bank footprint),
        ``queries_served``, ``push_work`` (cumulative push operations),
        ``push_work_per_query`` (mean), ``owns_index``, ``closed``.
        """
        with self._lock:
            served = self._queries_served
            push_work = self._push_work
        return {
            "num_forests": 0 if self._closed else self.index.num_forests,
            "index_size_bytes": 0 if self._closed else self.index.size_bytes,
            "queries_served": served,
            "push_work": push_work,
            "push_work_per_query": push_work / served if served else 0.0,
            "owns_index": self._owns_index,
            "closed": self._closed,
        }

    def run_items(self, items) -> list:
        """Uniform micro-batch entry point used by the serving layer.

        Every batch solver answers a sequence of kind-specific items
        (plain node ids here; ``(seeds, weights)`` / ``(node, k)`` /
        ``(source, target)`` tuples for the richer kinds) through this
        one method, so the scheduler and the process-executor workers
        need no per-kind dispatch.
        """
        return self.query_many(items)

    # -- internals -----------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise ConfigError(
                f"{type(self).__name__} is closed; build a new solver")

    def _record_query(self, push) -> None:
        with self._lock:
            self._queries_served += 1
            self._push_work += int(push.num_pushes)

    @property
    def num_forests(self) -> int:
        """Size of the shared forest bank."""
        return self.index.num_forests

    def _default_r_max(self) -> float:
        self._check_open()
        budget = self.config.walk_budget(self.graph)
        tau_hat = max(self.index.build_steps / self.index.num_forests, 1.0)
        mean_degree = max(self.graph.average_degree, 1.0)
        return float(np.clip(
            np.sqrt(mean_degree / (self.config.alpha * budget * tau_hat)),
            1e-9, 1.0))

    def _target_r_max(self) -> float:
        """Backward-push threshold shared by the target and pair paths.

        Kept in one place so a pair query's push stage is bit-identical
        to the single-target solver's — the foundation of the
        ``pair == full-vector entry`` contract.
        """
        return self.config.r_max or max(
            self._default_r_max(),
            self.config.epsilon * self.config.mu / self.config.budget_scale)

    def _query_stats(self, push, r_max: float, push_seconds: float,
                     mc_seconds: float, batch_size: int) -> dict:
        work = WorkCounters()
        work.record_push(push)
        stats = {"r_max": r_max, "num_pushes": push.num_pushes,
                 "push_work": push.work, "push_seconds": push_seconds,
                 "mc_seconds": mc_seconds,
                 "index_forests": self.index.num_forests,
                 "batch_size": batch_size}
        stats.update(work.as_stats())
        return stats

    def _run_batch(self, nodes, label: str, push_fn, r_max: float,
                   estimate_many, kind: str, method: str):
        """Shared push-then-batched-fold body of both ``query_many``."""
        self._check_open()
        nodes = [int(node) for node in nodes]
        for node in nodes:
            if not 0 <= node < self.graph.num_nodes:
                raise ConfigError(f"{label} {node} out of range")
        if not nodes:
            return []
        pushes = []
        push_seconds = []
        for node in nodes:
            t0 = time.perf_counter()
            pushes.append(push_fn(node))
            push_seconds.append(time.perf_counter() - t0)
        t1 = time.perf_counter()
        residuals = np.stack([push.residual for push in pushes])
        mc = estimate_many(residuals, improved=self._improved)
        mc_seconds = (time.perf_counter() - t1) / len(nodes)
        local_nodes = getattr(self.index, "local_nodes", None)
        results = []
        for position, node in enumerate(nodes):
            push = pushes[position]
            self._record_query(push)
            stats = self._query_stats(push, r_max, push_seconds[position],
                                      mc_seconds, len(nodes))
            if local_nodes is None:
                results.append(PPRResult(
                    estimates=push.reserve + mc[position], kind=kind,
                    query_node=node, method=method,
                    alpha=self.config.alpha, epsilon=self.config.epsilon,
                    stats=stats))
            else:
                # restricted bank: the fold produced only this shard's
                # rows; slicing the reserve before the add matches
                # (reserve + mc_full)[local] bit for bit, so the
                # router's reassembly is pure placement
                results.append(ShardPartial(
                    estimates=push.reserve[local_nodes] + mc[position],
                    kind=kind, query_node=node, method=method,
                    alpha=self.config.alpha, epsilon=self.config.epsilon,
                    stats=stats))
        return results


class BatchSourceSolver(_BatchSolverBase):
    """Answer many single-source queries against one forest bank.

    Examples
    --------
    >>> import repro
    >>> from repro.core.batch import BatchSourceSolver
    >>> g = repro.load_dataset("youtube", scale=0.05)
    >>> with BatchSourceSolver(g, alpha=0.05, seed=1,
    ...                        budget_scale=0.05) as solver:
    ...     results = [solver.query(s) for s in (0, 1, 2)]
    >>> all(abs(r.total_mass - 1.0) < 0.3 for r in results)
    True
    >>> solver.stats()["queries_served"]
    3
    """

    def query(self, source: int) -> PPRResult:
        """``π(source, ·)`` via balanced forward push + the shared bank.

        Exactly ``query_many([source])[0]`` — single and micro-batched
        serving share one code path, so they are byte-identical.
        """
        return self.query_many([source])[0]

    def query_many(self, sources) -> list[PPRResult]:
        """Answer a micro-batch of single-source queries in one fold.

        The per-query pushes run individually (their cost is bounded by
        ``r_max``), then one batched estimator fold
        (:meth:`~repro.montecarlo.forest_index.ForestIndex.estimate_source_many`)
        amortises the per-forest segment work across the whole batch.
        Each returned :class:`~repro.core.result.PPRResult` is
        bit-identical to a standalone :meth:`query` for that source.
        """
        r_max = self.config.r_max or self._default_r_max()
        return self._run_batch(
            sources, "source",
            lambda node: balanced_forward_push(
                self.graph, node, self.config.alpha, r_max,
                backend=self.config.push_backend),
            r_max, self.index.estimate_source_many, "source",
            "batch-source")


class BatchTargetSolver(_BatchSolverBase):
    """Answer many single-target queries against one forest bank."""

    def query(self, target: int) -> PPRResult:
        """``π(·, target)`` via backward push + the shared bank.

        Exactly ``query_many([target])[0]`` — see
        :meth:`BatchSourceSolver.query`.
        """
        return self.query_many([target])[0]

    def query_many(self, targets) -> list[PPRResult]:
        """Micro-batch of single-target queries in one estimator fold."""
        r_max = self._target_r_max()
        return self._run_batch(
            targets, "target",
            lambda node: backward_push(
                self.graph, node, self.config.alpha, r_max,
                backend=self.config.push_backend),
            r_max, self.index.estimate_target_many, "target",
            "batch-target")


class BatchMultiSeedSolver(BatchSourceSolver):
    r"""Weighted seed-set personalization over one forest bank.

    ``π(w, ·) = Σ_i w_i · π(s_i, ·)`` by linearity of PPR in the
    personalization vector — and the forest estimators are linear in
    the residual, so the fold below (single-seed rows combined by
    :func:`~repro.forests.estimators.weighted_combine`) is *bit
    identical* to the weighted sum of the single-seed
    :meth:`~BatchSourceSolver.query` rows, not merely close.  A batch
    of seed-set items flattens every seed into one
    :meth:`~BatchSourceSolver.query_many` fold, so the per-forest
    segment work is still paid once per micro-batch.
    """

    def query_multiseed(self, seeds, weights=None) -> PPRResult:
        """One weighted seed-set query (``weights`` default uniform)."""
        return self.run_items([(tuple(seeds),
                                None if weights is None
                                else tuple(weights))])[0]

    def run_items(self, items) -> list[PPRResult]:
        """Answer ``[(seeds, weights), ...]`` items in one shared fold."""
        self._check_open()
        parsed = [normalize_seed_set(seeds, weights, self.graph.num_nodes)
                  for seeds, weights in items]
        if not parsed:
            return []
        flat = [seed for seeds, _ in parsed for seed in seeds]
        rows = self.query_many(flat)
        # sharded banks yield ShardPartial rows; weighted_combine is
        # elementwise, so combining the local rows equals the full
        # combination's local slice bit for bit
        result_cls = (ShardPartial if rows
                      and isinstance(rows[0], ShardPartial) else PPRResult)
        results = []
        position = 0
        for seeds, weights in parsed:
            chunk = rows[position:position + len(seeds)]
            position += len(seeds)
            estimates = weighted_combine(
                [row.estimates for row in chunk], weights)
            work = WorkCounters()
            for row in chunk:
                work.merge(row.stats)
            stats = {"num_seeds": len(seeds),
                     "seeds": list(seeds),
                     "weights": list(weights),
                     "batch_size": len(parsed),
                     "index_forests": self.index.num_forests}
            stats.update(work.as_stats())
            results.append(result_cls(
                estimates=estimates, kind="source", query_node=seeds[0],
                method="multiseed", alpha=self.config.alpha,
                epsilon=self.config.epsilon, stats=stats))
        return results


class BatchPairSolver(_BatchSolverBase):
    """Answer ``π(source, target)`` pair queries against one bank.

    Meet-in-the-middle: a backward push from each target (bounded by
    the same ``r_max`` as :class:`BatchTargetSolver`) leaves a reserve
    plus residual; the forest fold then gathers only the *source* row
    of each operator instead of spreading to all ``n`` nodes
    (:meth:`~repro.montecarlo.forest_index.ForestIndex.estimate_target_entries`),
    so the answer is bit-identical to
    ``BatchTargetSolver.query(target)[source]`` at roughly half the
    fold cost.
    """

    def query_pair(self, source: int, target: int) -> PairResult:
        """One ``π(source, target)`` scalar."""
        return self.run_items([(int(source), int(target))])[0]

    def run_items(self, items) -> list[PairResult]:
        """Answer ``[(source, target), ...]`` items in one gather fold."""
        self._check_open()
        pairs = [(int(source), int(target)) for source, target in items]
        for source, target in pairs:
            if not 0 <= source < self.graph.num_nodes:
                raise ConfigError(f"source {source} out of range")
            if not 0 <= target < self.graph.num_nodes:
                raise ConfigError(f"target {target} out of range")
        if not pairs:
            return []
        r_max = self._target_r_max()
        pushes = []
        push_seconds = []
        for _, target in pairs:
            t0 = time.perf_counter()
            pushes.append(backward_push(
                self.graph, target, self.config.alpha, r_max,
                backend=self.config.push_backend))
            push_seconds.append(time.perf_counter() - t0)
        t1 = time.perf_counter()
        residuals = np.stack([push.residual for push in pushes])
        entries = np.array([source for source, _ in pairs], dtype=np.int64)
        mc = self.index.estimate_target_entries(residuals, entries,
                                                improved=self._improved)
        mc_seconds = (time.perf_counter() - t1) / len(pairs)
        results = []
        for position, (source, target) in enumerate(pairs):
            push = pushes[position]
            self._record_query(push)
            value = float(push.reserve[source] + mc[position])
            stats = self._query_stats(push, r_max, push_seconds[position],
                                      mc_seconds, len(pairs))
            stats["estimator"] = ("improved" if self._improved else "basic")
            results.append(PairResult(
                source=source, target=target, value=value,
                method="batch-pair", alpha=self.config.alpha,
                epsilon=self.config.epsilon, stats=stats))
        return results
