r"""Batch query solvers: amortise forests across many queries.

The crucial structural fact of the forest approach — the sampled
forests do not depend on the query node — means a bank of forests can
serve *every* source (or target) in a workload; only the cheap push
stage is per-query.  This is §5.3's index idea turned into a
batch-processing API:

- :class:`BatchSourceSolver` — many single-source queries, one forest
  bank (FORALV+/SPEEDLV+ semantics with an explicit lifecycle);
- :class:`BatchTargetSolver` — the single-target analogue (not in the
  paper, but an immediate corollary).

Both are thin, explicit wrappers over
:class:`~repro.montecarlo.forest_index.ForestIndex` plus the
appropriate push, returning ordinary
:class:`~repro.core.result.PPRResult` objects.

Lifecycle: a solver may be constructed around a pre-built, shared
``index=`` (the serving layer's :class:`~repro.service.IndexManager`
does this so one bank backs many solvers), used as a context manager,
and observed via :meth:`~_BatchSolverBase.stats` — bank size, queries
served, cumulative push work.  :meth:`~_BatchSolverBase.close`
releases an owned bank; a solver that merely borrowed an injected
index leaves it untouched.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.core.config import PPRConfig
from repro.core.result import PPRResult
from repro.counters import WorkCounters
from repro.exceptions import ConfigError
from repro.graph.csr import Graph
from repro.montecarlo.forest_index import ForestIndex
from repro.push.backward import backward_push
from repro.push.forward import balanced_forward_push
from repro.rng import ensure_rng

__all__ = ["BatchSourceSolver", "BatchTargetSolver"]


class _BatchSolverBase:
    def __init__(self, graph: Graph, *, config: PPRConfig | None = None,
                 num_forests: int | None = None,
                 index: ForestIndex | None = None, **overrides):
        config = config or PPRConfig()
        if overrides:
            config = config.with_overrides(**overrides)
        self.config = config.resolve(graph)
        self.graph = graph
        self._improved = not graph.directed
        if index is not None:
            if index.graph.num_nodes != graph.num_nodes:
                raise ConfigError(
                    f"injected index was built for "
                    f"{index.graph.num_nodes} nodes, graph has "
                    f"{graph.num_nodes}")
            if abs(index.alpha - self.config.alpha) > 1e-12:
                raise ConfigError(
                    f"injected index was built for alpha={index.alpha}, "
                    f"config says alpha={self.config.alpha}")
            self.index = index
            self._owns_index = False
        else:
            if num_forests is None:
                num_forests = ForestIndex.recommended_size(
                    graph, self.config.epsilon)
            self.index = ForestIndex.build(graph, self.config.alpha,
                                           num_forests,
                                           rng=ensure_rng(self.config.seed),
                                           method=self.config.sampler)
            self._owns_index = True
        self._closed = False
        self._queries_served = 0
        self._push_work = 0
        self._lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def close(self) -> None:
        """Release the forest bank (if owned) and refuse further queries.

        Idempotent.  A solver built around an injected ``index=`` only
        drops its reference — the shared bank stays valid for every
        other solver borrowing it.
        """
        if self._closed:
            return
        self._closed = True
        if self._owns_index:
            self.index.forests.clear()
        self.index = None  # type: ignore[assignment]

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    def stats(self) -> dict:
        """Point-in-time lifecycle snapshot for monitoring.

        Keys: ``num_forests`` / ``index_size_bytes`` (bank footprint),
        ``queries_served``, ``push_work`` (cumulative push operations),
        ``push_work_per_query`` (mean), ``owns_index``, ``closed``.
        """
        with self._lock:
            served = self._queries_served
            push_work = self._push_work
        return {
            "num_forests": 0 if self._closed else self.index.num_forests,
            "index_size_bytes": 0 if self._closed else self.index.size_bytes,
            "queries_served": served,
            "push_work": push_work,
            "push_work_per_query": push_work / served if served else 0.0,
            "owns_index": self._owns_index,
            "closed": self._closed,
        }

    # -- internals -----------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise ConfigError(
                f"{type(self).__name__} is closed; build a new solver")

    def _record_query(self, push) -> None:
        with self._lock:
            self._queries_served += 1
            self._push_work += int(push.num_pushes)

    @property
    def num_forests(self) -> int:
        """Size of the shared forest bank."""
        return self.index.num_forests

    def _default_r_max(self) -> float:
        self._check_open()
        budget = self.config.walk_budget(self.graph)
        tau_hat = max(self.index.build_steps / self.index.num_forests, 1.0)
        mean_degree = max(self.graph.average_degree, 1.0)
        return float(np.clip(
            np.sqrt(mean_degree / (self.config.alpha * budget * tau_hat)),
            1e-9, 1.0))

    def _query_stats(self, push, r_max: float, push_seconds: float,
                     mc_seconds: float, batch_size: int) -> dict:
        work = WorkCounters()
        work.record_push(push)
        stats = {"r_max": r_max, "num_pushes": push.num_pushes,
                 "push_work": push.work, "push_seconds": push_seconds,
                 "mc_seconds": mc_seconds,
                 "index_forests": self.index.num_forests,
                 "batch_size": batch_size}
        stats.update(work.as_stats())
        return stats

    def _run_batch(self, nodes, label: str, push_fn, r_max: float,
                   estimate_many, kind: str, method: str):
        """Shared push-then-batched-fold body of both ``query_many``."""
        self._check_open()
        nodes = [int(node) for node in nodes]
        for node in nodes:
            if not 0 <= node < self.graph.num_nodes:
                raise ConfigError(f"{label} {node} out of range")
        if not nodes:
            return []
        pushes = []
        push_seconds = []
        for node in nodes:
            t0 = time.perf_counter()
            pushes.append(push_fn(node))
            push_seconds.append(time.perf_counter() - t0)
        t1 = time.perf_counter()
        residuals = np.stack([push.residual for push in pushes])
        mc = estimate_many(residuals, improved=self._improved)
        mc_seconds = (time.perf_counter() - t1) / len(nodes)
        results = []
        for position, node in enumerate(nodes):
            push = pushes[position]
            self._record_query(push)
            results.append(PPRResult(
                estimates=push.reserve + mc[position], kind=kind,
                query_node=node, method=method,
                alpha=self.config.alpha, epsilon=self.config.epsilon,
                stats=self._query_stats(push, r_max,
                                        push_seconds[position],
                                        mc_seconds, len(nodes))))
        return results


class BatchSourceSolver(_BatchSolverBase):
    """Answer many single-source queries against one forest bank.

    Examples
    --------
    >>> import repro
    >>> from repro.core.batch import BatchSourceSolver
    >>> g = repro.load_dataset("youtube", scale=0.05)
    >>> with BatchSourceSolver(g, alpha=0.05, seed=1,
    ...                        budget_scale=0.05) as solver:
    ...     results = [solver.query(s) for s in (0, 1, 2)]
    >>> all(abs(r.total_mass - 1.0) < 0.3 for r in results)
    True
    >>> solver.stats()["queries_served"]
    3
    """

    def query(self, source: int) -> PPRResult:
        """``π(source, ·)`` via balanced forward push + the shared bank.

        Exactly ``query_many([source])[0]`` — single and micro-batched
        serving share one code path, so they are byte-identical.
        """
        return self.query_many([source])[0]

    def query_many(self, sources) -> list[PPRResult]:
        """Answer a micro-batch of single-source queries in one fold.

        The per-query pushes run individually (their cost is bounded by
        ``r_max``), then one batched estimator fold
        (:meth:`~repro.montecarlo.forest_index.ForestIndex.estimate_source_many`)
        amortises the per-forest segment work across the whole batch.
        Each returned :class:`~repro.core.result.PPRResult` is
        bit-identical to a standalone :meth:`query` for that source.
        """
        r_max = self.config.r_max or self._default_r_max()
        return self._run_batch(
            sources, "source",
            lambda node: balanced_forward_push(
                self.graph, node, self.config.alpha, r_max,
                backend=self.config.push_backend),
            r_max, self.index.estimate_source_many, "source",
            "batch-source")


class BatchTargetSolver(_BatchSolverBase):
    """Answer many single-target queries against one forest bank."""

    def query(self, target: int) -> PPRResult:
        """``π(·, target)`` via backward push + the shared bank.

        Exactly ``query_many([target])[0]`` — see
        :meth:`BatchSourceSolver.query`.
        """
        return self.query_many([target])[0]

    def query_many(self, targets) -> list[PPRResult]:
        """Micro-batch of single-target queries in one estimator fold."""
        r_max = self.config.r_max or max(
            self._default_r_max(),
            self.config.epsilon * self.config.mu / self.config.budget_scale)
        return self._run_batch(
            targets, "target",
            lambda node: backward_push(
                self.graph, node, self.config.alpha, r_max,
                backend=self.config.push_backend),
            r_max, self.index.estimate_target_many, "target",
            "batch-target")
