"""Accuracy metrics used throughout the evaluation (Figs. 4, 10, 13).

All metrics take plain NumPy vectors so they work on
:class:`~repro.core.result.PPRResult` estimates and raw arrays alike.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigError

__all__ = ["l1_error", "max_relative_error", "precision_at_k",
           "degree_normalized"]


def _pair(estimate, exact) -> tuple[np.ndarray, np.ndarray]:
    estimate = np.asarray(getattr(estimate, "estimates", estimate),
                          dtype=np.float64)
    exact = np.asarray(exact, dtype=np.float64)
    if estimate.shape != exact.shape:
        raise ConfigError(
            f"shape mismatch: estimate {estimate.shape} vs exact {exact.shape}")
    return estimate, exact


def l1_error(estimate, exact) -> float:
    """``Σ_v |π̂(v) − π(v)|`` — the paper's headline accuracy metric."""
    estimate, exact = _pair(estimate, exact)
    return float(np.abs(estimate - exact).sum())


def max_relative_error(estimate, exact, mu: float) -> float:
    """``max_v |π̂ − π| / π`` over nodes with ``π(v) ≥ mu``.

    The quantity bounded by the approximate-query Definitions 2.2/2.3;
    returns 0.0 when no node clears the threshold.
    """
    if mu <= 0:
        raise ConfigError("mu must be positive")
    estimate, exact = _pair(estimate, exact)
    mask = exact >= mu
    if not mask.any():
        return 0.0
    return float(np.max(np.abs(estimate[mask] - exact[mask]) / exact[mask]))


def precision_at_k(estimate, exact, k: int) -> float:
    """Fraction of the true top-``k`` nodes recovered by the estimate.

    The standard quality metric for PPR-based ranking applications.
    """
    if k <= 0:
        raise ConfigError("k must be positive")
    estimate, exact = _pair(estimate, exact)
    k = min(k, estimate.size)
    top_estimate = set(np.argpartition(estimate, -k)[-k:].tolist())
    top_exact = set(np.argpartition(exact, -k)[-k:].tolist())
    return len(top_estimate & top_exact) / k


def degree_normalized(vector, degrees) -> np.ndarray:
    """``π(v)/d_v`` — the ranking functional that stays informative as
    α → 0 (§7.7 and [50]); zero-degree nodes map to 0."""
    vector = np.asarray(getattr(vector, "estimates", vector), dtype=np.float64)
    degrees = np.asarray(degrees, dtype=np.float64)
    result = np.zeros_like(vector)
    positive = degrees > 0
    result[positive] = vector[positive] / degrees[positive]
    return result
