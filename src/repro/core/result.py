"""The result type returned by every PPR query algorithm."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.counters import WorkCounters
from repro.exceptions import ConfigError

__all__ = ["PPRResult", "PairResult"]


@dataclass
class PPRResult:
    """Estimated PPR vector plus provenance and cost accounting.

    Attributes
    ----------
    estimates:
        ``π̂`` per node — a single-source row (``π̂(query, v)``) or a
        single-target column (``π̂(v, query)``), see ``kind``.
    kind:
        ``"source"`` or ``"target"``.
    query_node:
        The source or target the query was issued for.
    method:
        Algorithm name (``"fora"``, ``"speedlv"``, ...).
    alpha, epsilon:
        The configuration the estimate was produced under.
    stats:
        Cost accounting filled by the algorithm: push/sampling wall
        clock, push operations, forest/walk counts, walk steps —
        machine-independent work counters the benchmark harness
        prefers over raw seconds.
    """

    estimates: np.ndarray
    kind: str
    query_node: int
    method: str
    alpha: float
    epsilon: float
    stats: dict = field(default_factory=dict)

    def __post_init__(self):
        self.estimates = np.asarray(self.estimates, dtype=np.float64)
        if self.kind not in ("source", "target"):
            raise ConfigError(f"kind must be 'source' or 'target', got {self.kind!r}")

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Length of the estimate vector."""
        return self.estimates.size

    def __getitem__(self, node: int) -> float:
        """``π̂`` for one node."""
        return float(self.estimates[node])

    def top_k(self, k: int = 10) -> list[tuple[int, float]]:
        """The ``k`` nodes with the largest estimated PPR, descending."""
        if k <= 0:
            raise ConfigError("k must be positive")
        k = min(k, self.num_nodes)
        order = np.argpartition(self.estimates, -k)[-k:]
        order = order[np.argsort(self.estimates[order])[::-1]]
        return [(int(node), float(self.estimates[node])) for node in order]

    @property
    def total_mass(self) -> float:
        """``Σ_v π̂`` — close to 1 for a well-converged source query."""
        return float(self.estimates.sum())

    @property
    def total_seconds(self) -> float:
        """Wall-clock total across recorded stages (0 if not recorded)."""
        return float(sum(value for key, value in self.stats.items()
                         if key.endswith("_seconds")))

    @property
    def work(self) -> WorkCounters:
        """Machine-independent work done (parsed from the ``work_*`` stats).

        Walk steps, cycle pops, forests sampled and push operations —
        the quantities the benchmark harness compares across hosts
        instead of raw seconds.  All-zero for results produced by code
        paths that do not record counters.
        """
        return WorkCounters.from_stats(self.stats)

    def __repr__(self) -> str:
        return (f"PPRResult({self.kind}={self.query_node}, "
                f"method={self.method!r}, alpha={self.alpha}, "
                f"mass={self.total_mass:.4f})")


@dataclass
class PairResult:
    """A single ``π(source, target)`` scalar plus cost accounting.

    The pairwise analogue of :class:`PPRResult` — the batch pair
    solver returns one of these per ``(s, t)`` item instead of a full
    vector, which is what lets the serving layer skip materialising
    ``n`` estimates for a one-number answer.
    """

    source: int
    target: int
    value: float
    method: str
    alpha: float
    epsilon: float
    stats: dict = field(default_factory=dict)

    def __float__(self) -> float:
        return float(self.value)

    @property
    def work(self) -> WorkCounters:
        """Machine-independent work done (parsed from ``work_*`` stats)."""
        return WorkCounters.from_stats(self.stats)

    def __repr__(self) -> str:
        return (f"PairResult({self.source}->{self.target}, "
                f"value={self.value:.6g}, alpha={self.alpha})")
