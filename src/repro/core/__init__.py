"""The paper's query algorithms (§5, §6) behind a uniform API."""

from repro.core.config import PPRConfig
from repro.core.result import PairResult, PPRResult
from repro.core.api import (
    single_source,
    single_target,
    SINGLE_SOURCE_METHODS,
    SINGLE_SOURCE_INDEXED_METHODS,
    SINGLE_TARGET_METHODS,
)
from repro.core.single_source import (
    fora,
    foral,
    foralv,
    speedppr,
    speedl,
    speedlv,
    fora_plus,
    speedppr_plus,
    foralv_plus,
    speedlv_plus,
)
from repro.core.single_target import back, rback, backl, backlv, backlv_plus
from repro.core.pairwise import PairEstimate, pair_ppr
from repro.core.batch import (
    BatchMultiSeedSolver,
    BatchPairSolver,
    BatchSourceSolver,
    BatchTargetSolver,
    normalize_seed_set,
)
from repro.core.topk import (
    BatchTopKSolver,
    TopKQueryResult,
    TopKResult,
    top_k_single_source,
    heavy_hitters,
)
from repro.core.accuracy import (
    l1_error,
    max_relative_error,
    precision_at_k,
    degree_normalized,
)

__all__ = [
    "PPRConfig",
    "PPRResult",
    "single_source",
    "single_target",
    "SINGLE_SOURCE_METHODS",
    "SINGLE_SOURCE_INDEXED_METHODS",
    "SINGLE_TARGET_METHODS",
    "fora",
    "foral",
    "foralv",
    "speedppr",
    "speedl",
    "speedlv",
    "fora_plus",
    "speedppr_plus",
    "foralv_plus",
    "speedlv_plus",
    "back",
    "rback",
    "backl",
    "backlv",
    "backlv_plus",
    "PairEstimate",
    "PairResult",
    "pair_ppr",
    "BatchMultiSeedSolver",
    "BatchPairSolver",
    "BatchSourceSolver",
    "BatchTargetSolver",
    "BatchTopKSolver",
    "normalize_seed_set",
    "TopKQueryResult",
    "TopKResult",
    "top_k_single_source",
    "heavy_hitters",
    "l1_error",
    "max_relative_error",
    "precision_at_k",
    "degree_normalized",
]
