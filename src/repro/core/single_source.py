r"""Single-source PPR algorithms (§5): baselines and the paper's.

Online algorithms, all two-stage (deterministic push, then Monte
Carlo on the leftover residual, Eq. 6):

=============  =====================  ==============================
name           push stage             Monte-Carlo stage
=============  =====================  ==============================
``fora``       forward push (Alg. 2)  α-walks, ``⌈r(u)·W⌉`` per node
``foral``      balanced forward push  forests, basic estimator
``foralv``     balanced forward push  forests, improved estimator
``speedppr``   power push             α-walks
``speedl``     power push             forests, basic estimator
``speedlv``    power push             forests, improved estimator
=============  =====================  ==============================

Index-based variants (``fora_plus``, ``speedppr_plus``,
``foralv_plus``, ``speedlv_plus``) replace the online Monte-Carlo
stage with lookups into a prebuilt :class:`~repro.montecarlo.walk_index.WalkIndex`
or :class:`~repro.montecarlo.forest_index.ForestIndex` (§5.3).

Default ``r_max`` selection follows the paper's balancing arguments:

- FORA: minimise ``1/(α r) + r·W·(1/α)·m`` → ``r_max = 1/√(W·m)``;
- FORAL/FORALV: minimise ``d̄/(α r) + r·W·τ`` →
  ``r_max = √(d̄ / (α·W·τ̂))`` with τ̂ measured from a pilot forest
  (which is then reused as the first Monte-Carlo sample);
- SPEED*: power-push until the marginal mat-vec no longer pays for
  itself — residual mass target ``m/W`` (walks) with the forest
  variants stopping at the same point for comparability.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.config import PPRConfig
from repro.core.result import PPRResult
from repro.counters import WorkCounters
from repro.exceptions import ConfigError
from repro.forests.estimators import (CVAccumulator, accumulate_cv_estimates,
                                      accumulate_estimates, cv_combine,
                                      cv_stderr)
from repro.forests.sampling import sample_forest
from repro.graph.csr import Graph
from repro.montecarlo.forest_index import ForestIndex
from repro.montecarlo.walk_index import WalkIndex
from repro.montecarlo.walks import simulate_alpha_walks
from repro.parallel.engine import parallel_estimate_stage
from repro.push.forward import balanced_forward_push, forward_push
from repro.push.power_push import power_push
from repro.rng import ensure_rng

__all__ = [
    "fora", "foral", "foralv", "speedppr", "speedl", "speedlv",
    "fora_plus", "speedppr_plus", "foralv_plus", "speedlv_plus",
]


# ----------------------------------------------------------------------
# Shared Monte-Carlo stages
# ----------------------------------------------------------------------
def _walk_stage(graph: Graph, residual: np.ndarray, config: PPRConfig,
                rng) -> tuple[np.ndarray, dict]:
    """α-walk stage: ``⌈r(u)·W⌉`` walks from each ``u``, weight
    ``r(u)/count`` per endpoint."""
    budget = config.walk_budget(graph)
    nodes = np.flatnonzero(residual > 0)
    if nodes.size == 0:
        return np.zeros(graph.num_nodes), {"num_walks": 0, "walk_steps": 0,
                                           "_counters": WorkCounters()}
    counts = np.ceil(residual[nodes] * budget).astype(np.int64)
    counts = np.maximum(counts, 1)
    total = int(counts.sum())
    if total > config.max_walks:
        # uniform thinning keeps the estimator unbiased, only noisier
        counts = np.maximum(
            (counts * (config.max_walks / total)).astype(np.int64), 1)
        total = int(counts.sum())
    starts = np.repeat(nodes, counts)
    batch = simulate_alpha_walks(graph, starts, config.alpha, rng=rng)
    weights = np.repeat(residual[nodes] / counts, counts)
    estimate = np.bincount(batch.endpoints, weights=weights,
                           minlength=graph.num_nodes)
    return estimate, {"num_walks": total, "walk_steps": batch.total_steps,
                      "_counters": WorkCounters(
                          walk_steps=int(batch.total_steps))}


def _forest_stage(graph: Graph, residual: np.ndarray, config: PPRConfig,
                  rng, *, improved: bool, sample_ceiling: float,
                  pilot=None, kind: str = "source") -> tuple[np.ndarray, dict]:
    """Forest stage: ``ω = ⌈ceiling·W⌉`` forests, averaged estimator.

    Runs through the chunked engine (:mod:`repro.parallel.engine`) with
    ``config.workers`` processes; the chunk plan and per-chunk RNG
    streams depend only on ω, so a fixed seed gives bit-identical
    estimates for every worker count.

    With ``config.track_variance`` the per-node standard error of the
    Monte-Carlo mean (``σ̂/√ω``) is returned in the stats under
    ``"mc_stderr"`` — the per-forest estimates are i.i.d., so this is a
    calibrated uncertainty for the sampled part of the answer.

    ``config.variance_mode`` steers the stage: ``"stratified"`` couples
    the sampling chunks (same estimator, ω already discounted by
    :attr:`~repro.core.config.PPRConfig.variance_gain`);
    ``"control_variate"`` switches to the basic estimator with the
    fitted degree-mass variate (β reported as ``"cv_beta"``).  The
    pilot forest, when present, is folded in first under either mode —
    a stratified batch's members keep the single-forest marginal law,
    so mixing the pilot in stays unbiased.
    """
    omega = config.num_forests(graph, sample_ceiling)
    counters = WorkCounters()
    track = config.track_variance
    mode = config.variance_mode
    if mode == "control_variate":
        acc = CVAccumulator.zeros(graph.num_nodes, track)
        if pilot is not None:
            acc.merge(accumulate_cv_estimates(
                [pilot], residual, graph.degrees, kind=kind,
                track_squares=track, counters=counters))
        stage = parallel_estimate_stage(
            graph, config.alpha, max(omega - acc.drawn, 0), residual,
            kind=kind, improved=False, rng=rng, workers=config.workers,
            method=config.sampler, track_squares=track,
            variance_mode=mode)
        acc.merge(stage.cv_accumulator())
        counters.merge(stage.counters)
        mean, beta = cv_combine(acc, graph.degrees, counters=counters)
        stats = {"num_forests": acc.drawn,
                 "forest_steps": counters.walk_steps,
                 "cycle_pops": counters.cycle_pops, "omega": omega,
                 "mc_workers": stage.workers_used,
                 "mc_chunks": stage.num_chunks,
                 "variance_mode": mode, "cv_beta": beta,
                 "_counters": counters}
        if track:
            stats["mc_stderr"] = cv_stderr(acc, beta)
        return mean, stats
    sums = np.zeros(graph.num_nodes)
    squares = np.zeros(graph.num_nodes) if track else None
    drawn = 0
    if pilot is not None:
        # the pilot was already drawn from the parent stream; fold it
        # in first so it is reused as the first Monte-Carlo sample
        pilot_sums, pilot_squares, pilot_drawn = accumulate_estimates(
            [pilot], residual, graph.degrees, kind=kind, improved=improved,
            track_squares=track, counters=counters)
        sums += pilot_sums
        if squares is not None and pilot_squares is not None:
            squares += pilot_squares
        drawn += pilot_drawn
    stage = parallel_estimate_stage(
        graph, config.alpha, max(omega - drawn, 0), residual, kind=kind,
        improved=improved, rng=rng, workers=config.workers,
        method=config.sampler, track_squares=track, variance_mode=mode)
    sums += stage.sums
    if squares is not None and stage.squares is not None:
        squares += stage.squares
    drawn += stage.drawn
    counters.merge(stage.counters)
    stats = {"num_forests": drawn, "forest_steps": counters.walk_steps,
             "cycle_pops": counters.cycle_pops, "omega": omega,
             "mc_workers": stage.workers_used, "mc_chunks": stage.num_chunks,
             "variance_mode": mode, "_counters": counters}
    mean = sums / drawn
    if squares is not None:
        variance = np.maximum(squares / drawn - mean * mean, 0.0)
        stats["mc_stderr"] = np.sqrt(variance / drawn)
    return mean, stats


def _pilot_r_max(graph: Graph, config: PPRConfig, rng):
    """FORAL/FORALV default ``r_max``: balance push against sampling
    using a pilot forest's step count as τ̂.  Returns (r_max, pilot)."""
    pilot = sample_forest(graph, config.alpha, rng=rng,
                          method=config.sampler)
    tau_hat = max(pilot.num_steps, 1)
    budget = config.walk_budget(graph)
    mean_degree = max(graph.average_degree, 1.0)
    r_max = float(np.sqrt(mean_degree / (config.alpha * budget * tau_hat)))
    return float(np.clip(r_max, 1e-9, 1.0)), pilot


def _finish(graph: Graph, source: int, method: str, config: PPRConfig,
            reserve: np.ndarray, mc_estimate: np.ndarray,
            stats: dict) -> PPRResult:
    return PPRResult(estimates=reserve + mc_estimate, kind="source",
                     query_node=source, method=method, alpha=config.alpha,
                     epsilon=config.epsilon, stats=stats)


def _merge_work(stats: dict, push) -> dict:
    """Fold the stage's ``WorkCounters`` plus the push stage into ``stats``.

    Pops the private ``"_counters"`` entry the Monte-Carlo stages leave
    behind, accounts the :class:`~repro.push.forward.PushResult`'s
    pushes/sweeps, and flattens everything into ``work_*`` keys (see
    :mod:`repro.counters`) so the harness picks the counters up.
    """
    work = stats.pop("_counters", None) or WorkCounters()
    work.record_push(push)
    stats.update(work.as_stats())
    return stats


def _prepare(graph: Graph, source: int,
             config: PPRConfig | None) -> tuple[PPRConfig, np.random.Generator]:
    if not 0 <= source < graph.num_nodes:
        raise ConfigError(f"source {source} out of range [0, {graph.num_nodes})")
    config = (config or PPRConfig()).resolve(graph)
    return config, ensure_rng(config.seed)


def _require_undirected_for_improved(graph: Graph, method: str) -> None:
    """Theorem 3.7's conditional root law needs an undirected graph; the
    improved estimator is biased on directed inputs (see
    :mod:`repro.forests.estimators`)."""
    if graph.directed:
        raise ConfigError(
            f"{method} uses the variance-reduced estimator, which is only "
            f"unbiased on undirected graphs; use the basic-estimator "
            f"variant instead")


def _check_variance_mode(graph: Graph, config: PPRConfig | None,
                         method: str) -> None:
    """The control-variate regression needs ``E[t] = d`` — the degree
    vector must be stationary (``dᵀP = dᵀ``), which holds exactly on
    undirected graphs.  Stratified coupling changes only the sampling
    joint law, never a marginal, so it carries no extra requirement."""
    if (config is not None and config.variance_mode == "control_variate"
            and graph.directed):
        raise ConfigError(
            f"{method}: variance_mode='control_variate' relies on the "
            f"degree vector being stationary and is only unbiased on "
            f"undirected graphs")


# ----------------------------------------------------------------------
# FORA family (forward push front-end)
# ----------------------------------------------------------------------
def fora(graph: Graph, source: int,
         config: PPRConfig | None = None) -> PPRResult:
    """FORA [46]: forward push + per-node α-walks (baseline)."""
    config, rng = _prepare(graph, source, config)
    r_max = config.r_max
    if r_max is None:
        budget = config.walk_budget(graph)
        r_max = float(np.clip(1.0 / np.sqrt(budget * max(graph.num_arcs, 1)),
                              1e-9, 1.0))
    t0 = time.perf_counter()
    push = forward_push(graph, source, config.alpha, r_max,
                        backend=config.push_backend)
    t1 = time.perf_counter()
    mc, mc_stats = _walk_stage(graph, push.residual, config, rng)
    t2 = time.perf_counter()
    stats = _merge_work({"r_max": r_max, "num_pushes": push.num_pushes,
                         "push_work": push.work, "push_seconds": t1 - t0,
                         "mc_seconds": t2 - t1, **mc_stats},
                        push)
    return _finish(graph, source, "fora", config, push.reserve, mc, stats)


def _foral_family(graph: Graph, source: int, config: PPRConfig | None,
                  *, improved: bool, method: str) -> PPRResult:
    if improved:
        _require_undirected_for_improved(graph, method)
    _check_variance_mode(graph, config, method)
    config, rng = _prepare(graph, source, config)
    t0 = time.perf_counter()
    pilot = None
    r_max = config.r_max
    if r_max is None:
        r_max, pilot = _pilot_r_max(graph, config, rng)
    push = balanced_forward_push(graph, source, config.alpha, r_max,
                                 backend=config.push_backend)
    t1 = time.perf_counter()
    mc, mc_stats = _forest_stage(graph, push.residual, config, rng,
                                 improved=improved, sample_ceiling=r_max,
                                 pilot=pilot)
    t2 = time.perf_counter()
    stats = _merge_work({"r_max": r_max, "num_pushes": push.num_pushes,
                         "push_work": push.work, "push_seconds": t1 - t0,
                         "mc_seconds": t2 - t1, **mc_stats},
                        push)
    return _finish(graph, source, method, config, push.reserve, mc, stats)


def foral(graph: Graph, source: int,
          config: PPRConfig | None = None) -> PPRResult:
    """FORAL (Algorithm 3, basic estimator): balanced forward push +
    spanning forests."""
    return _foral_family(graph, source, config, improved=False,
                         method="foral")


def foralv(graph: Graph, source: int,
           config: PPRConfig | None = None) -> PPRResult:
    """FORALV (Algorithm 3, improved estimator): balanced forward push
    + spanning forests with conditional-Monte-Carlo variance reduction.
    Carries the relative error guarantee of Theorem 5.3."""
    return _foral_family(graph, source, config, improved=True,
                         method="foralv")


# ----------------------------------------------------------------------
# SPEED family (power push front-end)
# ----------------------------------------------------------------------
def _residual_target(graph: Graph, config: PPRConfig) -> float:
    """SPEEDPPR stopping mass: one more mat-vec costs ``m`` push-edge
    units and removes ``W·ρ`` expected walk steps, so stop at
    ``ρ ≈ m·c_ratio/W`` with ``c_ratio`` the push/walk unit-cost ratio."""
    budget = config.walk_budget(graph)
    target = graph.num_arcs * config.push_cost_ratio / budget
    return float(np.clip(target, 1e-12, 1.0))


def _max_residual_target(graph: Graph, config: PPRConfig,
                         tau_hat: float) -> float:
    """SPEEDL/SPEEDLV stopping ceiling: a mat-vec shrinks the residual
    ceiling by the factor ``1-α`` and the forest stage costs
    ``⌈r_ceil·W⌉·τ`` steps, so the marginal balance stops at
    ``r_ceil ≈ m·c_ratio / (W·τ̂·α)``."""
    budget = config.walk_budget(graph)
    target = (graph.num_arcs * config.push_cost_ratio
              / (budget * max(tau_hat, 1.0) * config.alpha))
    return float(np.clip(target, 1e-12, 1.0))


def speedppr(graph: Graph, source: int,
             config: PPRConfig | None = None) -> PPRResult:
    """SPEEDPPR [49]: whole-vector power push + α-walks (baseline)."""
    config, rng = _prepare(graph, source, config)
    target = _residual_target(graph, config)
    t0 = time.perf_counter()
    push = power_push(graph, source, config.alpha, target,
                      backend=config.push_backend)
    t1 = time.perf_counter()
    mc, mc_stats = _walk_stage(graph, push.residual, config, rng)
    t2 = time.perf_counter()
    stats = _merge_work({"residual_target": target,
                         "num_pushes": push.num_pushes,
                         "push_work": push.work, "push_seconds": t1 - t0,
                         "mc_seconds": t2 - t1, **mc_stats},
                        push)
    return _finish(graph, source, "speedppr", config, push.reserve, mc, stats)


def _speedl_family(graph: Graph, source: int, config: PPRConfig | None,
                   *, improved: bool, method: str) -> PPRResult:
    if improved:
        _require_undirected_for_improved(graph, method)
    _check_variance_mode(graph, config, method)
    config, rng = _prepare(graph, source, config)
    t0 = time.perf_counter()
    if config.r_max is not None:
        target, pilot = config.r_max, None
    else:
        pilot = sample_forest(graph, config.alpha, rng=rng,
                              method=config.sampler)
        target = _max_residual_target(graph, config, pilot.num_steps)
    push = power_push(graph, source, config.alpha, target, criterion="max",
                      backend=config.push_backend)
    t1 = time.perf_counter()
    ceiling = max(float(push.residual.max(initial=0.0)), 1e-12)
    mc, mc_stats = _forest_stage(graph, push.residual, config, rng,
                                 improved=improved, sample_ceiling=ceiling,
                                 pilot=pilot)
    t2 = time.perf_counter()
    stats = _merge_work({"residual_target": target,
                         "num_pushes": push.num_pushes,
                         "push_work": push.work, "push_seconds": t1 - t0,
                         "mc_seconds": t2 - t1, **mc_stats},
                        push)
    return _finish(graph, source, method, config, push.reserve, mc, stats)


def speedl(graph: Graph, source: int,
           config: PPRConfig | None = None) -> PPRResult:
    """SPEEDL: power push + spanning forests (basic estimator)."""
    return _speedl_family(graph, source, config, improved=False,
                          method="speedl")


def speedlv(graph: Graph, source: int,
            config: PPRConfig | None = None) -> PPRResult:
    """SPEEDLV: power push + spanning forests (improved estimator) —
    the paper's best online single-source algorithm."""
    return _speedl_family(graph, source, config, improved=True,
                          method="speedlv")


# ----------------------------------------------------------------------
# Index-based variants (§5.3)
# ----------------------------------------------------------------------
def _check_index(index, graph: Graph, config: PPRConfig,
                 expected_type, name: str) -> None:
    if not isinstance(index, expected_type):
        raise ConfigError(f"{name} requires a {expected_type.__name__}")
    if index.graph is not graph:
        raise ConfigError(f"{name}: index was built for a different graph")
    if not np.isclose(index.alpha, config.alpha):
        raise ConfigError(
            f"{name}: index was built for alpha={index.alpha}, "
            f"query uses alpha={config.alpha}")


def fora_plus(graph: Graph, source: int, index: WalkIndex,
              config: PPRConfig | None = None) -> PPRResult:
    """FORA+ [46]: forward push + precomputed walk endpoints."""
    config, _ = _prepare(graph, source, config)
    _check_index(index, graph, config, WalkIndex, "fora_plus")
    budget = config.walk_budget(graph)
    r_max = config.r_max
    if r_max is None:
        r_max = float(np.clip(1.0 / np.sqrt(budget * max(graph.num_arcs, 1)),
                              1e-9, 1.0))
    t0 = time.perf_counter()
    push = forward_push(graph, source, config.alpha, r_max,
                        backend=config.push_backend)
    t1 = time.perf_counter()
    mc = index.estimate_from_residual(push.residual, budget)
    t2 = time.perf_counter()
    stats = _merge_work({"r_max": r_max, "num_pushes": push.num_pushes,
                         "push_work": push.work, "push_seconds": t1 - t0,
                         "mc_seconds": t2 - t1,
                         "index_walks": index.num_walks},
                        push)
    return _finish(graph, source, "fora+", config, push.reserve, mc, stats)


def speedppr_plus(graph: Graph, source: int, index: WalkIndex,
                  config: PPRConfig | None = None) -> PPRResult:
    """SPEEDPPR+ [49]: power push + precomputed walk endpoints."""
    config, _ = _prepare(graph, source, config)
    _check_index(index, graph, config, WalkIndex, "speedppr_plus")
    target = _residual_target(graph, config)
    t0 = time.perf_counter()
    push = power_push(graph, source, config.alpha, target,
                      backend=config.push_backend)
    t1 = time.perf_counter()
    mc = index.estimate_from_residual(push.residual,
                                      config.walk_budget(graph))
    t2 = time.perf_counter()
    stats = _merge_work({"residual_target": target,
                         "num_pushes": push.num_pushes,
                         "push_work": push.work, "push_seconds": t1 - t0,
                         "mc_seconds": t2 - t1,
                         "index_walks": index.num_walks},
                        push)
    return _finish(graph, source, "speedppr+", config, push.reserve, mc,
                   stats)


def foralv_plus(graph: Graph, source: int, index: ForestIndex,
                config: PPRConfig | None = None) -> PPRResult:
    """FORALV+: balanced forward push + precomputed spanning forests."""
    config, rng = _prepare(graph, source, config)
    _check_index(index, graph, config, ForestIndex, "foralv_plus")
    r_max = config.r_max
    if r_max is None:
        r_max, _ = _pilot_r_max(graph, config, rng)
    t0 = time.perf_counter()
    push = balanced_forward_push(graph, source, config.alpha, r_max,
                                 backend=config.push_backend)
    t1 = time.perf_counter()
    mc = index.estimate_source(push.residual, improved=True)
    t2 = time.perf_counter()
    stats = _merge_work({"r_max": r_max, "num_pushes": push.num_pushes,
                         "push_work": push.work, "push_seconds": t1 - t0,
                         "mc_seconds": t2 - t1,
                         "index_forests": index.num_forests},
                        push)
    return _finish(graph, source, "foralv+", config, push.reserve, mc, stats)


def speedlv_plus(graph: Graph, source: int, index: ForestIndex,
                 config: PPRConfig | None = None) -> PPRResult:
    """SPEEDLV+: power push + precomputed spanning forests — the
    paper's best indexed single-source algorithm."""
    config, _ = _prepare(graph, source, config)
    _check_index(index, graph, config, ForestIndex, "speedlv_plus")
    target = _residual_target(graph, config)
    t0 = time.perf_counter()
    push = power_push(graph, source, config.alpha, target,
                      backend=config.push_backend)
    t1 = time.perf_counter()
    mc = index.estimate_source(push.residual, improved=True)
    t2 = time.perf_counter()
    stats = _merge_work({"residual_target": target,
                         "num_pushes": push.num_pushes,
                         "push_work": push.work, "push_seconds": t1 - t0,
                         "mc_seconds": t2 - t1,
                         "index_forests": index.num_forests},
                        push)
    return _finish(graph, source, "speedlv+", config, push.reserve, mc,
                   stats)
