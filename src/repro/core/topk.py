r"""Top-k and heavy-hitter PPR queries with adaptive forest sampling.

The paper's related work covers dedicated top-k engines (TopPPR [47])
and heavy-hitter queries ([45]); both reduce, on the forest machinery,
to *sequential* sampling: draw forests in batches, maintain per-node
running means and variances of the (improved) estimator, and stop as
soon as the answer set is statistically separated —

- :func:`top_k_single_source`: stop when the k-th largest estimate's
  lower confidence bound clears the (k+1)-th largest's upper bound;
- :func:`heavy_hitters`: stop when every node's confidence interval
  lies entirely above or below the threshold ``φ``.

Confidence intervals are normal-approximation ``z·σ̂/√N`` over the
i.i.d. per-forest estimates — the same empirical-variance idea behind
sequential A/B testing, here applicable because each forest yields an
independent full-vector observation.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np
from scipy.stats import norm

from repro.core.config import PPRConfig
from repro.counters import WorkCounters
from repro.exceptions import ConfigError
from repro.forests.estimators import (
    source_estimate_basic,
    source_estimate_improved,
)
from repro.forests.sampling import sample_forest
from repro.graph.csr import Graph
from repro.push.forward import balanced_forward_push
from repro.rng import ensure_rng

__all__ = [
    "TopKResult",
    "TopKQueryResult",
    "BatchTopKSolver",
    "top_k_single_source",
    "heavy_hitters",
]


@dataclass
class TopKResult:
    """Outcome of an adaptive top-k / heavy-hitter query.

    Attributes
    ----------
    nodes:
        The answer set, sorted by descending estimate.
    estimates:
        Estimated PPR values parallel to ``nodes``.
    converged:
        Whether the statistical separation criterion was met before
        the forest budget ran out.
    num_forests:
        Forests actually sampled.
    stats:
        Push and sampling counters.
    """

    nodes: np.ndarray
    estimates: np.ndarray
    converged: bool
    num_forests: int
    stats: dict

    def as_pairs(self) -> list[tuple[int, float]]:
        """``[(node, estimate), ...]`` in rank order."""
        return [(int(node), float(value))
                for node, value in zip(self.nodes, self.estimates)]


@dataclass
class TopKQueryResult:
    """Serving-layer top-k answer: ranked prefix plus provenance.

    Unlike the library-level :class:`TopKResult`, this carries the
    query identity (``node``, ``k``, α, ε) so the cache, the HTTP
    layer, and the process-executor pipe can all treat it as a
    self-contained, picklable value.
    """

    node: int
    k: int
    nodes: np.ndarray
    estimates: np.ndarray
    converged: bool
    num_forests: int
    alpha: float
    epsilon: float
    stats: dict = field(default_factory=dict)

    def as_pairs(self) -> list[tuple[int, float]]:
        """``[(node, estimate), ...]`` in rank order."""
        return [(int(node), float(value))
                for node, value in zip(self.nodes, self.estimates)]

    def prefix(self, k: int) -> "TopKQueryResult":
        """This answer truncated to its first ``k`` ranks.

        The cache's prefix-dominance rule serves a ``k' <= k`` query
        from a stored depth-``k`` entry via this view; stats and
        provenance are shared, only the ranked arrays shrink.
        """
        if k > self.k:
            raise ConfigError(
                f"cannot extend a depth-{self.k} answer to k={k}")
        return TopKQueryResult(
            node=self.node, k=k, nodes=self.nodes[:k],
            estimates=self.estimates[:k], converged=self.converged,
            num_forests=self.num_forests, alpha=self.alpha,
            epsilon=self.epsilon, stats=self.stats)

    @property
    def work(self) -> WorkCounters:
        """Machine-independent work done (parsed from ``work_*`` stats)."""
        return WorkCounters.from_stats(self.stats)


class _SequentialEstimator:
    """Running mean/variance of per-forest estimate vectors."""

    def __init__(self, graph: Graph, source: int, config: PPRConfig):
        self.graph = graph
        self.config = config
        self.rng = ensure_rng(config.seed)
        self.improved = not graph.directed
        r_max = config.r_max or 1.0 / max(
            np.sqrt(config.walk_budget(graph)), 2.0)
        self.push = balanced_forward_push(graph, source, config.alpha,
                                          min(max(r_max, 1e-9), 1.0),
                                          backend=config.push_backend)
        self.r_max = r_max
        self.count = 0
        self.sum = np.zeros(graph.num_nodes)
        self.sum_squares = np.zeros(graph.num_nodes)
        self.steps = 0

    def draw(self, batch: int) -> None:
        """Sample ``batch`` more forests into the running moments."""
        degrees = self.graph.degrees
        for _ in range(batch):
            forest = sample_forest(self.graph, self.config.alpha,
                                   rng=self.rng,
                                   method=self.config.sampler)
            if self.improved:
                estimate = source_estimate_improved(
                    forest, self.push.residual, degrees)
            else:
                estimate = source_estimate_basic(forest, self.push.residual)
            self.sum += estimate
            self.sum_squares += estimate * estimate
            self.steps += forest.num_steps
            self.count += 1

    def mean(self) -> np.ndarray:
        """Current point estimate: reserve + Monte-Carlo mean."""
        return self.push.reserve + self.sum / self.count

    def half_width(self, z: float) -> np.ndarray:
        """Per-node confidence half-width ``z·σ̂/√N``."""
        mean_mc = self.sum / self.count
        variance = np.maximum(
            self.sum_squares / self.count - mean_mc * mean_mc, 0.0)
        return z * np.sqrt(variance / self.count)


def _prepare(graph: Graph, source: int, config: PPRConfig | None,
             overrides: dict) -> PPRConfig:
    if not 0 <= source < graph.num_nodes:
        raise ConfigError(f"source {source} out of range")
    config = config or PPRConfig()
    if overrides:
        config = config.with_overrides(**overrides)
    return config.resolve(graph)


def top_k_single_source(graph: Graph, source: int, k: int, *,
                        confidence: float = 0.95,
                        batch_size: int = 8,
                        max_forests: int = 512,
                        config: PPRConfig | None = None,
                        **overrides) -> TopKResult:
    """Adaptively find the ``k`` nodes with largest ``π(source, ·)``.

    Samples forests in batches of ``batch_size`` until the k-th and
    (k+1)-th ranked estimates' confidence intervals separate (or
    ``max_forests`` is hit; check ``result.converged``).
    """
    if k <= 0 or k >= graph.num_nodes:
        raise ConfigError("k must lie in [1, n)")
    if not 0.0 < confidence < 1.0:
        raise ConfigError("confidence must lie in (0, 1)")
    if batch_size <= 0 or max_forests < batch_size:
        raise ConfigError("need 0 < batch_size <= max_forests")
    config = _prepare(graph, source, config, overrides)
    z = float(norm.ppf(0.5 + confidence / 2.0))
    estimator = _SequentialEstimator(graph, source, config)

    converged = False
    while estimator.count < max_forests:
        estimator.draw(batch_size)
        means = estimator.mean()
        half = estimator.half_width(z)
        order = np.argsort(-means, kind="stable")
        kth, next_one = order[k - 1], order[k]
        if (means[kth] - half[kth]) > (means[next_one] + half[next_one]):
            converged = True
            break

    means = estimator.mean()
    order = np.argsort(-means, kind="stable")[:k]
    stats = {"num_pushes": estimator.push.num_pushes,
             "push_work": estimator.push.work,
             "forest_steps": estimator.steps,
             "r_max": estimator.r_max}
    return TopKResult(nodes=order, estimates=means[order],
                      converged=converged,
                      num_forests=estimator.count, stats=stats)


def heavy_hitters(graph: Graph, source: int, threshold: float, *,
                  confidence: float = 0.95,
                  batch_size: int = 8,
                  max_forests: int = 512,
                  config: PPRConfig | None = None,
                  **overrides) -> TopKResult:
    """All nodes with ``π(source, v) > threshold`` (the [45]-style query).

    Adaptive stopping: sampling continues until every node's confidence
    interval is entirely on one side of ``threshold``.
    """
    if threshold <= 0.0:
        raise ConfigError("threshold must be positive")
    if not 0.0 < confidence < 1.0:
        raise ConfigError("confidence must lie in (0, 1)")
    if batch_size <= 0 or max_forests < batch_size:
        raise ConfigError("need 0 < batch_size <= max_forests")
    config = _prepare(graph, source, config, overrides)
    z = float(norm.ppf(0.5 + confidence / 2.0))
    estimator = _SequentialEstimator(graph, source, config)

    converged = False
    while estimator.count < max_forests:
        estimator.draw(batch_size)
        means = estimator.mean()
        half = estimator.half_width(z)
        straddling = (means - half <= threshold) & (means + half > threshold)
        if not straddling.any():
            converged = True
            break

    means = estimator.mean()
    hitters = np.flatnonzero(means > threshold)
    hitters = hitters[np.argsort(-means[hitters], kind="stable")]
    stats = {"num_pushes": estimator.push.num_pushes,
             "push_work": estimator.push.work,
             "forest_steps": estimator.steps,
             "threshold": threshold,
             "r_max": estimator.r_max}
    return TopKResult(nodes=hitters, estimates=means[hitters],
                      converged=converged,
                      num_forests=estimator.count, stats=stats)


class _TopKState:
    """Per-query running moments over the shared forest stream."""

    __slots__ = ("node", "k", "push", "push_seconds", "sum", "sum_squares",
                 "done", "result")

    def __init__(self, node, k, push, push_seconds, num_nodes):
        self.node = node
        self.k = k
        self.push = push
        self.push_seconds = push_seconds
        self.sum = np.zeros(num_nodes)
        self.sum_squares = np.zeros(num_nodes)
        self.done = False
        self.result = None


class BatchTopKSolver:
    """Early-terminating top-k queries with a shared forest stream.

    A micro-batch of ``(node, k)`` items shares one deterministic
    forest stream (the RNG restarts from ``config.seed`` on every
    :meth:`run_items` call): forests are drawn in chunks of
    ``batch_draw``, each active query folds them into its running
    moments, and a query *freezes* its answer at the first checkpoint
    where the k-th and (k+1)-th ranked estimates' confidence intervals
    separate (:func:`top_k_single_source`'s rule).  Because the stream
    and the checkpoint grid are fixed, a query's answer depends only on
    ``(graph, config, node, k)`` — byte-identical for every batch
    composition and across thread/process executors — while queries
    that separate early stop paying estimator and sampling work, which
    is the measured ``walk_steps`` win over the full-budget path.

    ``early_stop=False`` disables the stopping rule (every query runs
    to ``max_forests``) — the matched-accuracy comparator the CI gate
    benchmarks against.
    """

    def __init__(self, graph: Graph, *, config: PPRConfig | None = None,
                 confidence: float = 0.95, batch_draw: int = 8,
                 max_forests: int = 256, early_stop: bool = True,
                 **overrides):
        config = config or PPRConfig()
        if overrides:
            config = config.with_overrides(**overrides)
        self.config = config.resolve(graph)
        self.graph = graph
        if not 0.0 < confidence < 1.0:
            raise ConfigError("confidence must lie in (0, 1)")
        if batch_draw <= 0 or max_forests < batch_draw:
            raise ConfigError("need 0 < batch_draw <= max_forests")
        self.confidence = float(confidence)
        self.batch_draw = int(batch_draw)
        self.max_forests = int(max_forests)
        self.early_stop = bool(early_stop)
        self._improved = not graph.directed
        self._z = float(norm.ppf(0.5 + self.confidence / 2.0))
        self._closed = False
        self._queries_served = 0
        self._push_work = 0
        self._lock = threading.Lock()

    # -- lifecycle (mirrors the batch solvers) -------------------------
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def close(self) -> None:
        """Refuse further queries (idempotent; no bank to release)."""
        self._closed = True

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    def stats(self) -> dict:
        """Lifecycle snapshot in the batch-solver shape."""
        with self._lock:
            served = self._queries_served
            push_work = self._push_work
        return {
            "num_forests": 0,
            "index_size_bytes": 0,
            "queries_served": served,
            "push_work": push_work,
            "push_work_per_query": push_work / served if served else 0.0,
            "owns_index": False,
            "closed": self._closed,
        }

    # ------------------------------------------------------------------
    def query_topk(self, node: int, k: int) -> TopKQueryResult:
        """One top-k query — exactly ``run_items([(node, k)])[0]``."""
        return self.run_items([(int(node), int(k))])[0]

    def run_items(self, items) -> list[TopKQueryResult]:
        """Answer ``[(node, k), ...]`` items over one forest stream."""
        if self._closed:
            raise ConfigError(
                f"{type(self).__name__} is closed; build a new solver")
        parsed = [(int(node), int(k)) for node, k in items]
        for node, k in parsed:
            if not 0 <= node < self.graph.num_nodes:
                raise ConfigError(f"source {node} out of range")
            if not 1 <= k < self.graph.num_nodes:
                raise ConfigError("k must lie in [1, n)")
        if not parsed:
            return []
        r_max = self.config.r_max or 1.0 / max(
            np.sqrt(self.config.walk_budget(self.graph)), 2.0)
        r_max = min(max(r_max, 1e-9), 1.0)
        states = []
        for node, k in parsed:
            t0 = time.perf_counter()
            push = balanced_forward_push(self.graph, node,
                                         self.config.alpha, r_max,
                                         backend=self.config.push_backend)
            states.append(_TopKState(node, k, push,
                                     time.perf_counter() - t0,
                                     self.graph.num_nodes))
        rng = ensure_rng(self.config.seed)
        degrees = self.graph.degrees
        drawn = 0
        walk_steps = 0
        cycle_pops = 0
        while drawn < self.max_forests and any(not s.done for s in states):
            chunk = min(self.batch_draw, self.max_forests - drawn)
            for _ in range(chunk):
                forest = sample_forest(self.graph, self.config.alpha,
                                       rng=rng,
                                       method=self.config.sampler)
                walk_steps += forest.num_steps
                cycle_pops += forest.num_pops
                for state in states:
                    if state.done:
                        continue
                    if self._improved:
                        estimate = source_estimate_improved(
                            forest, state.push.residual, degrees)
                    else:
                        estimate = source_estimate_basic(
                            forest, state.push.residual)
                    state.sum += estimate
                    state.sum_squares += estimate * estimate
            drawn += chunk
            for state in states:
                if state.done:
                    continue
                separated = self._separated(state, drawn)
                exhausted = drawn >= self.max_forests
                if (self.early_stop and separated) or exhausted:
                    self._freeze(state, drawn, walk_steps, cycle_pops,
                                 r_max, converged=separated,
                                 batch_size=len(parsed))
        return [state.result for state in states]

    # -- internals -----------------------------------------------------
    def _moments(self, state: _TopKState, count: int):
        means = state.push.reserve + state.sum / count
        mean_mc = state.sum / count
        variance = np.maximum(
            state.sum_squares / count - mean_mc * mean_mc, 0.0)
        half = self._z * np.sqrt(variance / count)
        return means, half

    def _separated(self, state: _TopKState, count: int) -> bool:
        means, half = self._moments(state, count)
        order = np.argsort(-means, kind="stable")
        kth, next_one = order[state.k - 1], order[state.k]
        return bool((means[kth] - half[kth])
                    > (means[next_one] + half[next_one]))

    def _freeze(self, state: _TopKState, count: int, walk_steps: int,
                cycle_pops: int, r_max: float, *, converged: bool,
                batch_size: int) -> None:
        means, _ = self._moments(state, count)
        order = np.argsort(-means, kind="stable")[:state.k]
        work = WorkCounters(walk_steps=int(walk_steps),
                            cycle_pops=int(cycle_pops),
                            forests_sampled=int(count))
        work.record_push(state.push)
        stats = {"r_max": r_max,
                 "num_pushes": state.push.num_pushes,
                 "push_work": state.push.work,
                 "push_seconds": state.push_seconds,
                 "confidence": self.confidence,
                 "batch_draw": self.batch_draw,
                 "max_forests": self.max_forests,
                 "early_stop": self.early_stop,
                 "batch_size": batch_size}
        stats.update(work.as_stats())
        state.result = TopKQueryResult(
            node=state.node, k=state.k, nodes=order,
            estimates=means[order], converged=converged,
            num_forests=count, alpha=self.config.alpha,
            epsilon=self.config.epsilon, stats=stats)
        state.done = True
        with self._lock:
            self._queries_served += 1
            self._push_work += int(state.push.num_pushes)
