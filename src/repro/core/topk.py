r"""Top-k and heavy-hitter PPR queries with adaptive forest sampling.

The paper's related work covers dedicated top-k engines (TopPPR [47])
and heavy-hitter queries ([45]); both reduce, on the forest machinery,
to *sequential* sampling: draw forests in batches, maintain per-node
running means and variances of the (improved) estimator, and stop as
soon as the answer set is statistically separated —

- :func:`top_k_single_source`: stop when the k-th largest estimate's
  lower confidence bound clears the (k+1)-th largest's upper bound;
- :func:`heavy_hitters`: stop when every node's confidence interval
  lies entirely above or below the threshold ``φ``.

Confidence intervals are normal-approximation ``z·σ̂/√N`` over the
i.i.d. per-forest estimates — the same empirical-variance idea behind
sequential A/B testing, here applicable because each forest yields an
independent full-vector observation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.stats import norm

from repro.core.config import PPRConfig
from repro.exceptions import ConfigError
from repro.forests.estimators import (
    source_estimate_basic,
    source_estimate_improved,
)
from repro.forests.sampling import sample_forest
from repro.graph.csr import Graph
from repro.push.forward import balanced_forward_push
from repro.rng import ensure_rng

__all__ = ["TopKResult", "top_k_single_source", "heavy_hitters"]


@dataclass
class TopKResult:
    """Outcome of an adaptive top-k / heavy-hitter query.

    Attributes
    ----------
    nodes:
        The answer set, sorted by descending estimate.
    estimates:
        Estimated PPR values parallel to ``nodes``.
    converged:
        Whether the statistical separation criterion was met before
        the forest budget ran out.
    num_forests:
        Forests actually sampled.
    stats:
        Push and sampling counters.
    """

    nodes: np.ndarray
    estimates: np.ndarray
    converged: bool
    num_forests: int
    stats: dict

    def as_pairs(self) -> list[tuple[int, float]]:
        """``[(node, estimate), ...]`` in rank order."""
        return [(int(node), float(value))
                for node, value in zip(self.nodes, self.estimates)]


class _SequentialEstimator:
    """Running mean/variance of per-forest estimate vectors."""

    def __init__(self, graph: Graph, source: int, config: PPRConfig):
        self.graph = graph
        self.config = config
        self.rng = ensure_rng(config.seed)
        self.improved = not graph.directed
        r_max = config.r_max or 1.0 / max(
            np.sqrt(config.walk_budget(graph)), 2.0)
        self.push = balanced_forward_push(graph, source, config.alpha,
                                          min(max(r_max, 1e-9), 1.0),
                                          backend=config.push_backend)
        self.r_max = r_max
        self.count = 0
        self.sum = np.zeros(graph.num_nodes)
        self.sum_squares = np.zeros(graph.num_nodes)
        self.steps = 0

    def draw(self, batch: int) -> None:
        """Sample ``batch`` more forests into the running moments."""
        degrees = self.graph.degrees
        for _ in range(batch):
            forest = sample_forest(self.graph, self.config.alpha,
                                   rng=self.rng,
                                   method=self.config.sampler)
            if self.improved:
                estimate = source_estimate_improved(
                    forest, self.push.residual, degrees)
            else:
                estimate = source_estimate_basic(forest, self.push.residual)
            self.sum += estimate
            self.sum_squares += estimate * estimate
            self.steps += forest.num_steps
            self.count += 1

    def mean(self) -> np.ndarray:
        """Current point estimate: reserve + Monte-Carlo mean."""
        return self.push.reserve + self.sum / self.count

    def half_width(self, z: float) -> np.ndarray:
        """Per-node confidence half-width ``z·σ̂/√N``."""
        mean_mc = self.sum / self.count
        variance = np.maximum(
            self.sum_squares / self.count - mean_mc * mean_mc, 0.0)
        return z * np.sqrt(variance / self.count)


def _prepare(graph: Graph, source: int, config: PPRConfig | None,
             overrides: dict) -> PPRConfig:
    if not 0 <= source < graph.num_nodes:
        raise ConfigError(f"source {source} out of range")
    config = config or PPRConfig()
    if overrides:
        config = config.with_overrides(**overrides)
    return config.resolve(graph)


def top_k_single_source(graph: Graph, source: int, k: int, *,
                        confidence: float = 0.95,
                        batch_size: int = 8,
                        max_forests: int = 512,
                        config: PPRConfig | None = None,
                        **overrides) -> TopKResult:
    """Adaptively find the ``k`` nodes with largest ``π(source, ·)``.

    Samples forests in batches of ``batch_size`` until the k-th and
    (k+1)-th ranked estimates' confidence intervals separate (or
    ``max_forests`` is hit; check ``result.converged``).
    """
    if k <= 0 or k >= graph.num_nodes:
        raise ConfigError("k must lie in [1, n)")
    if not 0.0 < confidence < 1.0:
        raise ConfigError("confidence must lie in (0, 1)")
    if batch_size <= 0 or max_forests < batch_size:
        raise ConfigError("need 0 < batch_size <= max_forests")
    config = _prepare(graph, source, config, overrides)
    z = float(norm.ppf(0.5 + confidence / 2.0))
    estimator = _SequentialEstimator(graph, source, config)

    converged = False
    while estimator.count < max_forests:
        estimator.draw(batch_size)
        means = estimator.mean()
        half = estimator.half_width(z)
        order = np.argsort(-means, kind="stable")
        kth, next_one = order[k - 1], order[k]
        if (means[kth] - half[kth]) > (means[next_one] + half[next_one]):
            converged = True
            break

    means = estimator.mean()
    order = np.argsort(-means, kind="stable")[:k]
    stats = {"num_pushes": estimator.push.num_pushes,
             "push_work": estimator.push.work,
             "forest_steps": estimator.steps,
             "r_max": estimator.r_max}
    return TopKResult(nodes=order, estimates=means[order],
                      converged=converged,
                      num_forests=estimator.count, stats=stats)


def heavy_hitters(graph: Graph, source: int, threshold: float, *,
                  confidence: float = 0.95,
                  batch_size: int = 8,
                  max_forests: int = 512,
                  config: PPRConfig | None = None,
                  **overrides) -> TopKResult:
    """All nodes with ``π(source, v) > threshold`` (the [45]-style query).

    Adaptive stopping: sampling continues until every node's confidence
    interval is entirely on one side of ``threshold``.
    """
    if threshold <= 0.0:
        raise ConfigError("threshold must be positive")
    if not 0.0 < confidence < 1.0:
        raise ConfigError("confidence must lie in (0, 1)")
    if batch_size <= 0 or max_forests < batch_size:
        raise ConfigError("need 0 < batch_size <= max_forests")
    config = _prepare(graph, source, config, overrides)
    z = float(norm.ppf(0.5 + confidence / 2.0))
    estimator = _SequentialEstimator(graph, source, config)

    converged = False
    while estimator.count < max_forests:
        estimator.draw(batch_size)
        means = estimator.mean()
        half = estimator.half_width(z)
        straddling = (means - half <= threshold) & (means + half > threshold)
        if not straddling.any():
            converged = True
            break

    means = estimator.mean()
    hitters = np.flatnonzero(means > threshold)
    hitters = hitters[np.argsort(-means[hitters], kind="stable")]
    stats = {"num_pushes": estimator.push.num_pushes,
             "push_work": estimator.push.work,
             "forest_steps": estimator.steps,
             "threshold": threshold,
             "r_max": estimator.r_max}
    return TopKResult(nodes=hitters, estimates=means[hitters],
                      converged=converged,
                      num_forests=estimator.count, stats=stats)
