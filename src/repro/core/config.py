r"""Query configuration shared by every algorithm in §5 and §6.

:class:`PPRConfig` bundles the paper's parameters —

- ``alpha``: decay factor (default 0.01, the paper's headline setting);
- ``epsilon``: relative error threshold (default 0.5, the paper's
  default);
- ``mu``: PPR threshold above which the relative guarantee applies
  (default ``1/n``);
- ``failure_probability`` ``p_f`` (default ``1/n``);
- ``push_cost_ratio``: calibration constant for the SPEED* stopping
  rule — the cost of one vectorised push edge-traversal relative to
  one interpreted Monte-Carlo walk step (NumPy mat-vec work is far
  cheaper per edge than sampling work, so pushing deeper pays);

— and the derived Monte-Carlo budget

.. math:: W = \frac{(2\epsilon/3 + 2)\,\log(2/p_f)}{\epsilon^2\,\mu}

(Algorithm 3, line 3).  A two-stage algorithm then draws
``ω = ⌈r_{max} · W⌉`` spanning forests (or ``⌈r(u)·W⌉`` α-walks per
node).

**Budget scaling.**  With the paper's defaults ``W = Θ(n log n / ε²)``,
which C++ absorbs but pure Python cannot at interactive speed.
``budget_scale`` multiplies ``W`` (and hence every sample count)
uniformly across all algorithms; relative comparisons between methods
— the shapes the reproduction targets — are unaffected, and the
benchmark harness records the scale used.  The default of 1.0 keeps
the paper's exact guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.exceptions import ConfigError
from repro.graph.csr import Graph

__all__ = ["PPRConfig", "VARIANCE_MODES", "VARIANCE_GAIN"]

#: Recognised variance-reduction modes for the forest Monte-Carlo
#: stage.  ``"improved"`` is the paper's conditional-MC estimator
#: (Theorem 3.8); ``"control_variate"`` regresses the basic estimator
#: against its known-expectation degree-mass variate; ``"stratified"``
#: couples each sampling chunk through a Latin-hypercube grid.
VARIANCE_MODES = ("improved", "control_variate", "stratified")

#: Effective variance gain each mode delivers at equal forest count
#: relative to the ``"improved"`` baseline, as measured by the
#: empirical harness
#: (:func:`repro.forests.statistics.empirical_variance_ratio`; the
#: test-suite enforces the stratified floor).  ω is divided by this
#: gain: a mode that shrinks the bank-mean variance by ``g`` needs
#: ``1/g`` as many forests for the same accuracy.  The gains are
#: deliberately conservative — control_variate improves on *basic*
#: but not reliably on improved, so it earns no discount.
VARIANCE_GAIN = {"improved": 1.0, "control_variate": 1.0,
                 "stratified": 1.5}


@dataclass(frozen=True)
class PPRConfig:
    """Immutable PPR query configuration.

    All fields have paper-faithful defaults; ``mu`` and
    ``failure_probability`` default to ``1/n`` at resolution time
    (they need the graph size, see :meth:`resolve`).

    ``workers`` sets the process count for the chunked forest
    Monte-Carlo stage (:mod:`repro.parallel.engine`): ``1`` runs
    serially, ``0``/``None`` uses the cpu count.  For a fixed ``seed``
    the estimates are bit-identical for every ``workers`` value.

    ``push_backend`` selects the sweep kernel of every deterministic
    push stage (:mod:`repro.push.kernels`): ``"vectorized"`` (default)
    batches each frontier into segment ops, ``"scalar"`` runs the
    node-at-a-time reference loop.  Estimates and ``work_*`` counters
    are backend-independent, so it is a pure throughput knob.

    ``variance_mode`` picks the variance-reduction machinery of the
    forest stage (see :data:`VARIANCE_MODES`).  Modes with a measured
    gain shrink ω through :data:`VARIANCE_GAIN`, so fewer forests are
    sampled for the same accuracy target.  ``control_variate`` leans
    on the degree vector being stationary and therefore requires an
    undirected graph (like the improved estimators); ``stratified``
    only changes the sampling joint law, never a marginal, and works
    everywhere.
    """

    alpha: float = 0.01
    epsilon: float = 0.5
    mu: float | None = None
    failure_probability: float | None = None
    r_max: float | None = None
    budget_scale: float = 1.0
    push_cost_ratio: float = 0.02
    sampler: str = "auto"
    track_variance: bool = False
    max_forests: int = 100_000
    max_walks: int = 50_000_000
    seed: int | None = None
    workers: int | None = 1
    push_backend: str = "vectorized"
    variance_mode: str = "improved"

    def __post_init__(self):
        if not 0.0 < self.alpha < 1.0:
            raise ConfigError(
                f"alpha must lie strictly in (0, 1), got {self.alpha}")
        if self.epsilon <= 0.0:
            raise ConfigError(f"epsilon must be positive, got {self.epsilon}")
        if self.mu is not None and self.mu <= 0.0:
            raise ConfigError(f"mu must be positive, got {self.mu}")
        if self.failure_probability is not None and not (
                0.0 < self.failure_probability < 1.0):
            raise ConfigError("failure_probability must lie in (0, 1)")
        if self.r_max is not None and self.r_max <= 0.0:
            raise ConfigError(f"r_max must be positive, got {self.r_max}")
        if self.budget_scale <= 0.0:
            raise ConfigError("budget_scale must be positive")
        if self.push_cost_ratio <= 0.0:
            raise ConfigError("push_cost_ratio must be positive")
        if self.max_forests < 1 or self.max_walks < 1:
            raise ConfigError("sample caps must be at least 1")
        if self.workers is not None and self.workers < 0:
            raise ConfigError(
                f"workers must be >= 0 (0/None = cpu count), got {self.workers}")
        if self.variance_mode not in VARIANCE_MODES:
            raise ConfigError(
                f"variance_mode must be one of {VARIANCE_MODES}, "
                f"got {self.variance_mode!r}")
        # local import: repro.push pulls in graph/linalg modules and must
        # not be a hard import at config-module load time
        from repro.push.kernels import validate_push_backend
        validate_push_backend(self.push_backend)

    # ------------------------------------------------------------------
    def resolve(self, graph: Graph) -> "PPRConfig":
        """Fill graph-dependent defaults (``mu``, ``p_f`` → ``1/n``).

        ``p_f`` is clamped to 0.5 so degenerate one-node graphs stay
        valid (a probability of 1 would be meaningless anyway).
        """
        updates = {}
        if self.mu is None:
            updates["mu"] = 1.0 / graph.num_nodes
        if self.failure_probability is None:
            updates["failure_probability"] = min(
                1.0 / graph.num_nodes, 0.5)
        return replace(self, **updates) if updates else self

    def walk_budget(self, graph: Graph) -> float:
        """The scaled sample-count multiplier ``W`` (Algorithm 3, line 3)."""
        resolved = self.resolve(graph)
        raw = ((2.0 * resolved.epsilon / 3.0 + 2.0)
               * np.log(2.0 / resolved.failure_probability)
               / (resolved.epsilon ** 2 * resolved.mu))
        return raw * self.budget_scale

    @property
    def variance_gain(self) -> float:
        """The forest-count discount of :attr:`variance_mode`."""
        return VARIANCE_GAIN[self.variance_mode]

    def num_forests(self, graph: Graph, r_max: float) -> int:
        """``ω = ⌈r_max · W / g⌉`` clamped to ``[1, max_forests]``.

        ``g`` is :attr:`variance_gain`: a mode whose bank-mean variance
        is ``g×`` smaller at equal forest count matches the baseline
        accuracy with ``1/g`` of the forests.
        """
        omega = int(np.ceil(r_max * self.walk_budget(graph)
                            / self.variance_gain))
        return int(np.clip(omega, 1, self.max_forests))

    def with_overrides(self, **changes) -> "PPRConfig":
        """Functional update helper (``dataclasses.replace`` wrapper)."""
        return replace(self, **changes)
